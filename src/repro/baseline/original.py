"""The paper's baseline: the original, unmodified system.

"The system without any modification is set as the original system, which
would be regarded as the baseline in experiments" (Sec. V-A). Every phone
sends its own heartbeats directly over cellular; every beat pays a full
RRC establish/release cycle (heartbeat periods far exceed the tail timer)
and the corresponding setup + tx + tail energy.

Besides the simulated harness, closed-form expectations are provided so
tests can check the simulator against arithmetic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.cellular.rrc import RrcProfile, WCDMA_PROFILE
from repro.core.fallback import CellularFallbackSender
from repro.core.monitor import MessageMonitor
from repro.device import Smartphone
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.workload.apps import AppProfile, STANDARD_APP
from repro.workload.messages import PeriodicMessage


class OriginalSystem:
    """Direct-cellular heartbeat transmission for a set of devices."""

    def __init__(
        self,
        devices: Iterable[Smartphone] = (),
        app: AppProfile = STANDARD_APP,
        phase_fraction: Optional[float] = 0.0,
    ) -> None:
        self.app = app
        self.devices: Dict[str, Smartphone] = {}
        self.monitors: Dict[str, MessageMonitor] = {}
        self.sends_by_device: Dict[str, int] = {}
        self.fallback_senders: Dict[str, CellularFallbackSender] = {}
        for device in devices:
            self.add_device(device, phase_fraction=phase_fraction)

    def add_device(
        self, device: Smartphone, phase_fraction: Optional[float] = 0.0
    ) -> None:
        """Attach one phone to the baseline with its own heartbeat phase."""
        if device.device_id in self.devices:
            raise ValueError(f"duplicate device {device.device_id}")
        self.devices[device.device_id] = device
        self.sends_by_device[device.device_id] = 0
        self.fallback_senders[device.device_id] = CellularFallbackSender(device)
        monitor = MessageMonitor(
            device.sim,
            device.device_id,
            handler=self._make_sender(device),
        )
        monitor.register_app(self.app, phase_fraction=phase_fraction)
        self.monitors[device.device_id] = monitor

    def _make_sender(self, device: Smartphone):
        sender = self.fallback_senders[device.device_id]

        def send(message: PeriodicMessage) -> None:
            if not device.alive:
                return
            self.sends_by_device[device.device_id] += 1
            sender.send(message)

        return send

    def shutdown(self) -> None:
        for monitor in self.monitors.values():
            monitor.stop()

    @property
    def total_sends(self) -> int:
        return sum(self.sends_by_device.values())

    def total_energy_uah(self) -> float:
        return sum(d.energy.total_uah for d in self.devices.values())


# ----------------------------------------------------------------------
# closed-form expectations (for validating the simulator)
# ----------------------------------------------------------------------
def expected_energy_uah(
    n_heartbeats: int,
    size_bytes: int,
    profile: EnergyProfile = DEFAULT_PROFILE,
) -> float:
    """Energy of ``n_heartbeats`` standalone cellular beats for one device.

    Valid when the heartbeat period exceeds the RRC tail (always true for
    real IM periods), so every beat pays setup + tx + a full tail.
    """
    if n_heartbeats < 0:
        raise ValueError(f"n_heartbeats must be non-negative, got {n_heartbeats}")
    return n_heartbeats * profile.cellular_heartbeat_uah(size_bytes)


def expected_l3_messages(
    n_heartbeats: int,
    size_bytes: int,
    rrc_profile: RrcProfile = WCDMA_PROFILE,
) -> int:
    """Layer-3 messages for ``n_heartbeats`` standalone cellular beats."""
    if n_heartbeats < 0:
        raise ValueError(f"n_heartbeats must be non-negative, got {n_heartbeats}")
    from repro.cellular.signaling import reconfiguration_count

    per_beat = rrc_profile.messages_per_cycle + reconfiguration_count(size_bytes)
    return n_heartbeats * per_beat


def expected_beats_in(window_s: float, app: AppProfile, phase_fraction: float = 0.0) -> int:
    """How many beats one device emits in ``[0, window_s)``.

    With phase fraction ``p``, beats land at ``(p + k) * period``.
    """
    if window_s < 0:
        raise ValueError(f"window must be non-negative, got {window_s}")
    period = app.heartbeat_period_s
    first = phase_fraction * period
    if first >= window_s:
        return 0
    import math

    return int(math.floor((window_s - first - 1e-9) / period)) + 1
