"""Piggybacking baseline (related work [2], Qian et al., WWW'12).

"Some strategies, such as extending the period of the heartbeat messages,
or delaying heartbeat messages and piggybacking them with other messages,
are proposed in [2]" (paper Sec. I).

Policy: when a heartbeat fires, hold it. If a foreground data message is
transmitted while it is pending, attach the heartbeat to that
transmission — the radio is being promoted anyway, so the beat rides for
its marginal bytes with **no extra RRC cycle**. If no data shows up
before the beat's guarded deadline, send it alone (the original-system
path). Effective exactly to the extent the user generates foreground
traffic; an idle phone gains nothing, which is why the paper moves to D2D
aggregation instead.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.baseline.traffic_driver import MixedTrafficDevice
from repro.device import Smartphone
from repro.sim.events import Event
from repro.workload.apps import AppProfile, STANDARD_APP
from repro.workload.messages import PeriodicMessage


class _DevicePolicy:
    """Per-device piggybacking state."""

    def __init__(self, system: "PiggybackSystem", device: Smartphone) -> None:
        self.system = system
        self.device = device
        self.pending: List[PeriodicMessage] = []
        self._deadline_timers: Dict[int, Event] = {}

    # -- heartbeat path -------------------------------------------------
    def on_heartbeat(self, message: PeriodicMessage) -> None:
        self.pending.append(message)
        deadline = max(
            self.device.sim.now,
            message.deadline_s - self.system.uplink_guard_s,
        )
        self._deadline_timers[message.seq] = self.device.sim.schedule_at(
            deadline, self._deadline_hit, message.seq, name="piggyback_deadline"
        )

    def _deadline_hit(self, seq: int) -> None:
        self._deadline_timers.pop(seq, None)
        for i, message in enumerate(self.pending):
            if message.seq == seq:
                del self.pending[i]
                self.system.standalone_beats += 1
                self.device.modem.send(message.size_bytes, payload=message)
                return

    # -- data path --------------------------------------------------------
    def on_data(self, size_bytes: int) -> None:
        riders, self.pending = self.pending, []
        for message in riders:
            timer = self._deadline_timers.pop(message.seq, None)
            self.device.sim.cancel(timer)
        payload: List[object] = list(riders)
        total = size_bytes + sum(m.size_bytes for m in riders)
        self.system.data_sends += 1
        self.system.piggybacked_beats += len(riders)
        self.device.modem.send(total, payload=payload)

    def stop(self) -> None:
        """Flush held beats standalone, then stop — never drop a beat."""
        for timer in self._deadline_timers.values():
            self.device.sim.cancel(timer)
        self._deadline_timers.clear()
        pending, self.pending = self.pending, []
        for message in pending:
            if self.device.alive:
                self.system.standalone_beats += 1
                self.device.modem.send(message.size_bytes, payload=message)


class PiggybackSystem:
    """The piggybacking baseline over a set of devices."""

    def __init__(
        self,
        app: AppProfile = STANDARD_APP,
        uplink_guard_s: float = 4.0,
        data_rate_scale: float = 1.0,
    ) -> None:
        self.app = app
        self.uplink_guard_s = uplink_guard_s
        self.data_rate_scale = data_rate_scale
        self.drivers: Dict[str, MixedTrafficDevice] = {}
        self.policies: Dict[str, _DevicePolicy] = {}
        # statistics
        self.piggybacked_beats = 0
        self.standalone_beats = 0
        self.data_sends = 0

    def add_device(
        self,
        device: Smartphone,
        rng: random.Random,
        phase_fraction: Optional[float] = None,
    ) -> None:
        if device.device_id in self.drivers:
            raise ValueError(f"duplicate device {device.device_id}")
        policy = _DevicePolicy(self, device)
        self.policies[device.device_id] = policy
        self.drivers[device.device_id] = MixedTrafficDevice(
            device,
            self.app,
            rng,
            on_heartbeat=policy.on_heartbeat,
            on_data=policy.on_data,
            data_rate_scale=self.data_rate_scale,
            phase_fraction=phase_fraction,
        )

    def shutdown(self) -> None:
        for driver in self.drivers.values():
            driver.stop()
        for policy in self.policies.values():
            policy.stop()

    @property
    def piggyback_ratio(self) -> float:
        """Fraction of heartbeats that rode a data transmission."""
        total = self.piggybacked_beats + self.standalone_beats
        return 0.0 if total == 0 else self.piggybacked_beats / total
