"""Mixed heartbeat + foreground-data driver for baseline comparisons.

The related-work baselines (piggybacking, fast dormancy) only differ from
the original system in *when* transmissions happen relative to each
other, so their comparison needs devices that send foreground data
messages as well as heartbeats. This driver generates both: periodic
heartbeats from the app profile, and Poisson foreground data at the rate
implied by the app's Table I heartbeat share.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.device import Smartphone
from repro.sim.engine import Simulator
from repro.workload.apps import AppProfile
from repro.workload.generator import HeartbeatGenerator
from repro.workload.messages import PeriodicMessage


class MixedTrafficDevice:
    """Drives one phone with heartbeats plus foreground data messages.

    ``on_heartbeat(message)`` decides how the heartbeat is transmitted
    (immediately, delayed, piggybacked — the baseline's policy);
    ``on_data(size_bytes)`` fires whenever a foreground message is sent.
    """

    def __init__(
        self,
        device: Smartphone,
        app: AppProfile,
        rng: random.Random,
        on_heartbeat: Callable[[PeriodicMessage], None],
        on_data: Callable[[int], None],
        data_rate_scale: float = 1.0,
        phase_fraction: Optional[float] = None,
    ) -> None:
        if data_rate_scale < 0:
            raise ValueError(f"data_rate_scale must be >= 0, got {data_rate_scale}")
        self.device = device
        self.app = app
        self.rng = rng
        self.on_heartbeat = on_heartbeat
        self.on_data = on_data
        self.data_messages_sent = 0
        self.heartbeats_emitted = 0
        self._stopped = False
        self._generator = HeartbeatGenerator(
            device.sim,
            device.device_id,
            app,
            on_beat=self._emit_heartbeat,
            rng=rng,
            phase_fraction=phase_fraction,
        ).start()
        self._data_rate = app.other_message_rate_per_s() * data_rate_scale
        if self._data_rate > 0:
            self._schedule_next_data()

    # ------------------------------------------------------------------
    def _emit_heartbeat(self, message: PeriodicMessage) -> None:
        if self._stopped or not self.device.alive:
            return
        self.heartbeats_emitted += 1
        self.on_heartbeat(message)

    def _schedule_next_data(self) -> None:
        gap = self.rng.expovariate(self._data_rate)
        self.device.sim.schedule(gap, self._emit_data, name="foreground_data")

    def _emit_data(self) -> None:
        if self._stopped:
            return
        if self.device.alive:
            self.data_messages_sent += 1
            self.on_data(self.app.data_message_bytes)
        self._schedule_next_data()

    def stop(self) -> None:
        self._stopped = True
        self._generator.stop()
