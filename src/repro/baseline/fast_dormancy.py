"""Fast-dormancy baseline (related work [26], RadioJockey).

"[26] employs fast dormancy to save energy with higher signaling
overhead, which aggravates signaling storm while reducing energy
consumption" (paper Sec. VI).

Fast dormancy releases the RRC connection right after a transmission
instead of waiting out the inactivity tail: the tail energy disappears,
but every transmission now pays a full establish/release signaling cycle
— transmissions that would have shared one radio session (data + nearby
heartbeat) are split into separate cycles. The baseline is expressed as
an RRC profile with a minimal tail; the energy model's pro-rata tail
accounting does the rest.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Optional

from repro.baseline.traffic_driver import MixedTrafficDevice
from repro.cellular.rrc import RrcProfile, WCDMA_PROFILE
from repro.device import Smartphone
from repro.workload.apps import AppProfile, STANDARD_APP
from repro.workload.messages import PeriodicMessage

#: Residual radio-active time after a fast-dormancy release request: the
#: device still drains the SCRI exchange before the network lets go.
FAST_DORMANCY_TAIL_S = 0.5

#: The WCDMA profile with fast dormancy engaged.
FAST_DORMANCY_PROFILE: RrcProfile = dataclasses.replace(
    WCDMA_PROFILE, name="wcdma-fast-dormancy", tail_s=FAST_DORMANCY_TAIL_S
)


class FastDormancySystem:
    """Original-system behaviour on a fast-dormancy RRC profile.

    Devices must be constructed with ``rrc_profile=FAST_DORMANCY_PROFILE``;
    this class drives the same mixed workload as the other baselines so
    energy/signaling are comparable.
    """

    def __init__(
        self,
        app: AppProfile = STANDARD_APP,
        data_rate_scale: float = 1.0,
    ) -> None:
        self.app = app
        self.data_rate_scale = data_rate_scale
        self.drivers: Dict[str, MixedTrafficDevice] = {}
        self.heartbeat_sends = 0
        self.data_sends = 0

    def add_device(
        self,
        device: Smartphone,
        rng: random.Random,
        phase_fraction: Optional[float] = None,
    ) -> None:
        if device.device_id in self.drivers:
            raise ValueError(f"duplicate device {device.device_id}")
        if device.modem.rrc.profile.tail_s > FAST_DORMANCY_TAIL_S:
            raise ValueError(
                f"device {device.device_id} does not use a fast-dormancy RRC "
                f"profile (tail {device.modem.rrc.profile.tail_s}s); build it "
                "with rrc_profile=FAST_DORMANCY_PROFILE"
            )

        def send_heartbeat(message: PeriodicMessage) -> None:
            self.heartbeat_sends += 1
            device.modem.send(message.size_bytes, payload=message)

        def send_data(size_bytes: int) -> None:
            self.data_sends += 1
            device.modem.send(size_bytes, payload=None)

        self.drivers[device.device_id] = MixedTrafficDevice(
            device,
            self.app,
            rng,
            on_heartbeat=send_heartbeat,
            on_data=send_data,
            data_rate_scale=self.data_rate_scale,
            phase_fraction=phase_fraction,
        )

    def shutdown(self) -> None:
        for driver in self.drivers.values():
            driver.stop()
