"""Paper-style table and series formatting.

Every bench prints its reproduction in the same visual grammar as the
paper's tables/figures, so paper-vs-measured comparison is a side-by-side
read. Pure string formatting — no I/O.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Fixed-width ASCII table."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
    float_format: str = "{:.1f}",
) -> str:
    """A figure rendered as columns: x values and one column per curve."""
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points but x has {len(xs)}"
            )
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title, float_format=float_format)


def format_comparison(
    title: str,
    paper_value: str,
    measured_value: str,
    verdict: str,
) -> str:
    """One paper-vs-measured line for EXPERIMENTS.md-style reporting."""
    return f"{title}: paper={paper_value} measured={measured_value} [{verdict}]"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Tiny ASCII chart of a series (for bench stdout)."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = hi - lo
    if len(values) > width:
        # downsample by striding
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    if span == 0:
        return blocks[1] * len(values)
    return "".join(
        blocks[1 + int((v - lo) / span * (len(blocks) - 2))] for v in values
    )


def percent(value: float, decimals: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{decimals}f}%"
