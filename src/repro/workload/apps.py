"""IM app profiles.

Periods and sizes are the paper's (Sec. II-A): "the heartbeat messages of
QQ, WeChat, and WhatsApp are sent every 300 seconds, 270 seconds, and 240
seconds. Their sizes are 378 Bytes, 74 Bytes and 66 Bytes". The heartbeat
share of total messages comes from Table I. Commercial servers tolerate a
delay of up to 3T (Sec. III-C mentions WeChat); the framework itself only
ever delays up to T, but the server-side expiry uses the commercial factor.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

#: Commercial server-side expiration factor ("usually set as 3T ... such as
#: WeChat", Sec. III-C).
SERVER_EXPIRY_FACTOR = 3.0


@dataclasses.dataclass(frozen=True)
class AppProfile:
    """Workload characteristics of one IM app."""

    name: str
    heartbeat_period_s: float
    heartbeat_bytes: int
    #: Fraction of all the app's messages that are heartbeats (Table I).
    heartbeat_share: float
    #: Per-message delivery slack granted to the framework (the scheduler's
    #: T_k); conservatively one period unless the app says otherwise.
    expiry_s: float = 0.0
    #: Typical size of the app's non-heartbeat messages (for traffic mixes).
    data_message_bytes: int = 600

    def __post_init__(self) -> None:
        if self.heartbeat_period_s <= 0:
            raise ValueError(f"period must be positive: {self}")
        if self.heartbeat_bytes <= 0:
            raise ValueError(f"heartbeat size must be positive: {self}")
        if not 0.0 < self.heartbeat_share < 1.0:
            raise ValueError(f"heartbeat share must be in (0,1): {self}")
        if self.expiry_s == 0.0:
            object.__setattr__(self, "expiry_s", self.heartbeat_period_s)
        if self.expiry_s <= 0:
            raise ValueError(f"expiry must be positive: {self}")

    @property
    def server_expiry_s(self) -> float:
        """How long the IM server waits before marking the client offline."""
        return self.heartbeat_period_s * SERVER_EXPIRY_FACTOR

    def heartbeats_per_day(self) -> float:
        """Expected heartbeat count over 24 h."""
        return 86_400.0 / self.heartbeat_period_s

    def other_message_rate_per_s(self) -> float:
        """Rate of non-heartbeat messages consistent with Table I's share.

        If heartbeats are a fraction ``s`` of all messages, the other
        messages arrive at ``hb_rate * (1 - s) / s``.
        """
        hb_rate = 1.0 / self.heartbeat_period_s
        return hb_rate * (1.0 - self.heartbeat_share) / self.heartbeat_share


WECHAT = AppProfile(
    name="wechat", heartbeat_period_s=270.0, heartbeat_bytes=74, heartbeat_share=0.50
)
QQ = AppProfile(
    name="qq", heartbeat_period_s=300.0, heartbeat_bytes=378, heartbeat_share=0.526
)
WHATSAPP = AppProfile(
    name="whatsapp", heartbeat_period_s=240.0, heartbeat_bytes=66, heartbeat_share=0.619
)
#: The paper does not publish Facebook Messenger's period/size; Table I only
#: gives its heartbeat share. MQTT keep-alive defaults inform the stand-ins.
FACEBOOK = AppProfile(
    name="facebook", heartbeat_period_s=300.0, heartbeat_bytes=60, heartbeat_share=0.484
)
#: The paper's bench workload: 54 B standard beats on a WeChat-like period.
STANDARD_APP = AppProfile(
    name="standard", heartbeat_period_s=270.0, heartbeat_bytes=54, heartbeat_share=0.50
)

APP_REGISTRY: Dict[str, AppProfile] = {
    profile.name: profile
    for profile in (WECHAT, QQ, WHATSAPP, FACEBOOK, STANDARD_APP)
}


def get_app(name: str) -> AppProfile:
    """Look up a registered app profile by name."""
    try:
        return APP_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; known: {sorted(APP_REGISTRY)}"
        ) from None
