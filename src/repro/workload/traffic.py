"""Mixed heartbeat + data traffic (Table I).

Table I reports the fraction of an app's total messages that are
heartbeats. Heartbeats are strictly periodic; the remaining messages
(chats, receipts, presence updates) are modelled as a Poisson process whose
rate is chosen so the *expected* heartbeat share matches the table. The
Table I bench then regenerates the shares from a finite simulated window —
recovering the published proportions up to sampling noise.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, Iterable, List

from repro.workload.apps import APP_REGISTRY, AppProfile


@dataclasses.dataclass(frozen=True)
class TrafficMix:
    """Message counts for one app over one observation window."""

    app: str
    window_s: float
    heartbeat_count: int
    other_count: int
    heartbeat_bytes: int
    other_bytes: int

    @property
    def total_count(self) -> int:
        return self.heartbeat_count + self.other_count

    @property
    def heartbeat_share(self) -> float:
        """Fraction of messages that are heartbeats (the Table I statistic)."""
        if self.total_count == 0:
            return 0.0
        return self.heartbeat_count / self.total_count

    @property
    def heartbeat_byte_share(self) -> float:
        """Fraction of *bytes* that are heartbeats.

        The paper's motivating observation — heartbeats are ~half the
        messages but a small slice of the data volume ("accounts for only
        10% of cellular data traffic [yet] occupies 60% of cellular
        signaling traffic") — falls out of this quantity being small.
        """
        total = self.heartbeat_bytes + self.other_bytes
        return 0.0 if total == 0 else self.heartbeat_bytes / total


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's algorithm (fine for the modest means used here)."""
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if mean > 700:  # avoid exp underflow; normal approximation
        return max(0, int(round(rng.gauss(mean, math.sqrt(mean)))))
    threshold = math.exp(-mean)
    k, product = 0, 1.0
    while True:
        product *= rng.random()
        if product <= threshold:
            return k
        k += 1


def simulate_traffic_counts(
    app: AppProfile, window_s: float, rng: random.Random
) -> TrafficMix:
    """Generate one app's message counts over ``window_s`` seconds."""
    if window_s <= 0:
        raise ValueError(f"window must be positive, got {window_s}")
    heartbeats = int(window_s / app.heartbeat_period_s)
    others = _poisson(rng, app.other_message_rate_per_s() * window_s)
    return TrafficMix(
        app=app.name,
        window_s=window_s,
        heartbeat_count=heartbeats,
        other_count=others,
        heartbeat_bytes=heartbeats * app.heartbeat_bytes,
        other_bytes=others * app.data_message_bytes,
    )


def heartbeat_share_table(
    apps: Iterable[str], window_s: float, rng: random.Random, repeats: int = 1
) -> Dict[str, float]:
    """Regenerate Table I: app name → measured heartbeat share.

    Averages over ``repeats`` independent windows to tame Poisson noise.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    shares: Dict[str, float] = {}
    for name in apps:
        profile = APP_REGISTRY[name]
        values: List[float] = []
        for _ in range(repeats):
            values.append(simulate_traffic_counts(profile, window_s, rng).heartbeat_share)
        shares[name] = sum(values) / len(values)
    return shares
