"""IM server model.

"IM servers set expiration timers to determine a client is online or not;
in order to maintain online status, IM apps send heartbeat messages
frequently to reset the expiration timers" (Sec. II-A). The server here
does exactly that: it consumes uplink payloads delivered through the base
station, resets per-(device, app) expiration timers, and reports online
status and delivery statistics — including beats that arrived *after*
their deadline, which is the failure the scheduler must never cause.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.workload.apps import APP_REGISTRY, AppProfile
from repro.workload.messages import PeriodicMessage


@dataclasses.dataclass(frozen=True)
class DeliveryRecord:
    """One heartbeat's arrival at the server."""

    message: PeriodicMessage
    delivered_at_s: float
    via_device: str  # the device whose uplink carried it (relay or self)

    @property
    def on_time(self) -> bool:
        return self.delivered_at_s <= self.message.deadline_s

    @property
    def delay_s(self) -> float:
        """Delivery delay from message creation."""
        return self.delivered_at_s - self.message.created_at_s

    @property
    def relayed(self) -> bool:
        return self.via_device != self.message.origin_device


class IMServer:
    """Server-side heartbeat consumer and online-status tracker."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.records: List[DeliveryRecord] = []
        self._last_on_time: Dict[Tuple[str, str], float] = {}
        self._seen_seqs: set = set()
        self.on_time_count = 0
        self.late_count = 0
        self.relayed_count = 0
        #: A beat arriving twice (relay delivered it AND the UE's fallback
        #: re-sent it) — harmless for heartbeat semantics, but counted so
        #: experiments can report the waste.
        self.duplicate_count = 0

    # ------------------------------------------------------------------
    # base-station sink interface
    # ------------------------------------------------------------------
    def uplink_sink(
        self, time_s: float, sender_id: str, payload_bytes: int, payload: Any
    ) -> None:
        """Consume one uplink payload (attach via ``BaseStation.attach_sink``).

        Accepts a single :class:`PeriodicMessage`, an iterable of them (an
        aggregated relay uplink), or anything else (ignored as foreign
        traffic).
        """
        for message in _extract_messages(payload):
            self.receive(message, via_device=sender_id, time_s=time_s)

    def receive(
        self, message: PeriodicMessage, via_device: str, time_s: Optional[float] = None
    ) -> DeliveryRecord:
        """Record one heartbeat arrival and reset its expiration timer."""
        at = self.sim.now if time_s is None else time_s
        record = DeliveryRecord(message=message, delivered_at_s=at, via_device=via_device)
        self.records.append(record)
        if message.seq in self._seen_seqs:
            self.duplicate_count += 1
        else:
            self._seen_seqs.add(message.seq)
        if record.on_time:
            self.on_time_count += 1
            key = (message.origin_device, message.app)
            self._last_on_time[key] = max(self._last_on_time.get(key, -1.0), at)
        else:
            self.late_count += 1
        if record.relayed:
            self.relayed_count += 1
        return record

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_online(
        self, device_id: str, app: str, now: Optional[float] = None
    ) -> bool:
        """Whether the server currently considers (device, app) online.

        Uses the commercial server-side expiry window (3× period).
        """
        at = self.sim.now if now is None else now
        last = self._last_on_time.get((device_id, app))
        if last is None:
            return False
        profile = APP_REGISTRY.get(app)
        window = profile.server_expiry_s if profile else 3.0 * 300.0
        return at - last <= window

    def last_seen(self, device_id: str, app: str) -> Optional[float]:
        """Time of the last on-time beat from (device, app), if any."""
        return self._last_on_time.get((device_id, app))

    def deliveries_for(self, device_id: str) -> List[DeliveryRecord]:
        """All records whose *origin* is ``device_id``."""
        return [r for r in self.records if r.message.origin_device == device_id]

    def on_time_fraction(self) -> float:
        """Fraction of received beats that met their deadline (1.0 if none)."""
        total = self.on_time_count + self.late_count
        return 1.0 if total == 0 else self.on_time_count / total

    def delays(self) -> List[float]:
        """Delivery delays of all received beats (seconds)."""
        return [r.delay_s for r in self.records]

    def mean_delay_s(self) -> float:
        d = self.delays()
        return sum(d) / len(d) if d else 0.0


def _extract_messages(payload: Any) -> List[PeriodicMessage]:
    if isinstance(payload, PeriodicMessage):
        return [payload]
    if isinstance(payload, Iterable) and not isinstance(payload, (str, bytes)):
        return [m for m in payload if isinstance(m, PeriodicMessage)]
    return []
