"""IM workload substrate.

Heartbeat messages as the paper characterizes them (Sec. II-A): small,
frequent, reply-less, delay-tolerant within an expiration budget. Includes
the real app profiles the paper cites (WeChat 270 s / 74 B, QQ 300 s /
378 B, WhatsApp 240 s / 66 B), an IM-server model with online-status
expiration timers, and the mixed-traffic generator behind Table I.
"""

from repro.workload.messages import (
    HeartbeatMessage,
    MessageKind,
    PeriodicMessage,
    validate_relayable,
)
from repro.workload.apps import (
    AppProfile,
    APP_REGISTRY,
    WECHAT,
    QQ,
    WHATSAPP,
    FACEBOOK,
    STANDARD_APP,
)
from repro.workload.generator import HeartbeatGenerator
from repro.workload.server import IMServer, DeliveryRecord
from repro.workload.traffic import TrafficMix, simulate_traffic_counts
from repro.workload.push import PushNotificationService, PushResult
from repro.workload.trace import (
    HeartbeatTrace,
    TraceEvent,
    TraceReplayGenerator,
    synthesize_trace,
)
from repro.workload.mqtt import (
    MqttPacket,
    PacketType,
    decode_packet,
    encode_connect,
    encode_pingreq,
    estimated_wire_bytes,
)

__all__ = [
    "HeartbeatMessage",
    "MessageKind",
    "PeriodicMessage",
    "validate_relayable",
    "AppProfile",
    "APP_REGISTRY",
    "WECHAT",
    "QQ",
    "WHATSAPP",
    "FACEBOOK",
    "STANDARD_APP",
    "HeartbeatGenerator",
    "IMServer",
    "DeliveryRecord",
    "TrafficMix",
    "simulate_traffic_counts",
    "PushNotificationService",
    "PushResult",
    "HeartbeatTrace",
    "TraceEvent",
    "TraceReplayGenerator",
    "synthesize_trace",
    "MqttPacket",
    "PacketType",
    "decode_packet",
    "encode_connect",
    "encode_pingreq",
    "estimated_wire_bytes",
]
