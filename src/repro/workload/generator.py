"""Per-device heartbeat generation.

Each (device, app) pair gets a generator that emits a
:class:`~repro.workload.messages.HeartbeatMessage` every app period. A
random phase offset desynchronizes devices (real phones don't beat in
lockstep); optional per-beat jitter models scheduling slop in the OS.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.sim.engine import PeriodicProcess, Simulator
from repro.workload.apps import AppProfile
from repro.workload.messages import HeartbeatMessage


class HeartbeatGenerator:
    """Emits heartbeats for one app on one device.

    Parameters
    ----------
    sim, device_id, app:
        Where and what to generate.
    on_beat:
        Called with each new :class:`HeartbeatMessage` at its creation time.
        This is the hook the framework's Message Monitor intercepts.
    rng:
        Source for phase offset and jitter; ``None`` → zero phase, no jitter.
    phase_fraction:
        Explicit phase offset as a fraction of the period (overrides the
        random phase). Useful for constructing worst/best-case alignments.
    jitter_s:
        Uniform ±jitter applied to every beat's nominal time.
    """

    def __init__(
        self,
        sim: Simulator,
        device_id: str,
        app: AppProfile,
        on_beat: Callable[[HeartbeatMessage], None],
        rng: Optional[random.Random] = None,
        phase_fraction: Optional[float] = None,
        jitter_s: float = 0.0,
    ) -> None:
        if jitter_s < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter_s}")
        if phase_fraction is not None and not 0.0 <= phase_fraction < 1.0:
            raise ValueError(f"phase_fraction must be in [0,1), got {phase_fraction}")
        self.sim = sim
        self.device_id = device_id
        self.app = app
        self.on_beat = on_beat
        self.rng = rng
        self.jitter_s = min(jitter_s, app.heartbeat_period_s / 4.0)
        self.beats_emitted = 0
        if phase_fraction is None:
            phase_fraction = rng.random() if rng is not None else 0.0
        self._phase_s = phase_fraction * app.heartbeat_period_s
        self._process: Optional[PeriodicProcess] = None
        self._stopped = False

    def start(self) -> "HeartbeatGenerator":
        """Begin emitting; first beat fires after the phase offset."""
        if self._process is not None:
            raise RuntimeError("generator already started")
        self._process = self.sim.every(
            self.app.heartbeat_period_s,
            self._emit,
            start_after=self._phase_s,
            name=f"heartbeat:{self.device_id}:{self.app.name}",
        )
        return self

    def stop(self) -> None:
        """Stop emitting (device powered off / app closed)."""
        self._stopped = True
        if self._process is not None:
            self._process.stop()

    def restart(self) -> "HeartbeatGenerator":
        """Resume after :meth:`stop`; keeps the original phase alignment.

        The next beat fires at the next phase-aligned tick strictly after
        now, as if the app had kept its schedule while the device was down.
        """
        if self._process is not None and not self._process.stopped:
            return self
        self._stopped = False
        period = self.app.heartbeat_period_s
        elapsed = self.sim.now - self._phase_s
        periods_done = int(elapsed // period) + 1 if elapsed >= 0 else 0
        delay = self._phase_s + periods_done * period - self.sim.now
        self._process = self.sim.every(
            period,
            self._emit,
            start_after=delay,
            name=f"heartbeat:{self.device_id}:{self.app.name}",
        )
        return self

    def shift_phase(self, delta_s: float) -> None:
        """Skew the emission schedule by ``delta_s`` (clock drift).

        Negative skews wrap to the equivalent positive offset within one
        period, so the next firing is never pulled into the past.
        """
        period = self.app.heartbeat_period_s
        shift = delta_s % period
        if shift == 0.0:
            return
        self._phase_s = (self._phase_s + shift) % period
        if self._process is None or self._stopped:
            return
        next_fire = self._process.next_fire_s
        self._process.stop()
        target = (next_fire if next_fire is not None else self.sim.now) + shift
        self._process = self.sim.every(
            period,
            self._emit,
            start_after=max(0.0, target - self.sim.now),
            name=f"heartbeat:{self.device_id}:{self.app.name}",
        )

    def _emit(self) -> None:
        if self._stopped:
            return
        emit_now = 0.0
        if self.rng is not None and self.jitter_s > 0:
            emit_now = self.rng.uniform(0.0, self.jitter_s)
        self.sim.schedule(emit_now, self._deliver, name="heartbeat_emit")

    def _deliver(self) -> None:
        if self._stopped:
            return
        self.beats_emitted += 1
        message = HeartbeatMessage(
            app=self.app.name,
            origin_device=self.device_id,
            size_bytes=self.app.heartbeat_bytes,
            created_at_s=self.sim.now,
            period_s=self.app.heartbeat_period_s,
            expiry_s=self.app.expiry_s,
        )
        self.on_beat(message)
