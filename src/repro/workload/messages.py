"""Message types carried by the framework.

The paper's conclusion generalizes the framework beyond heartbeats to any
periodic message that is "(1) small in size and short in duration, (2)
do[es]n't need to reply, (3) [is] delay-tolerant" — advertisements and
diagnostics are its examples. :class:`PeriodicMessage` models that general
class; :class:`HeartbeatMessage` is the heartbeat specialization, and
:func:`validate_relayable` enforces the three constraints at the framework
boundary.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Optional

_sequence = itertools.count(1)

#: "Small in size": the framework refuses messages larger than this.
MAX_RELAYABLE_BYTES = 1024


class MessageKind(str, enum.Enum):
    """Periodic message classes the framework can carry."""

    HEARTBEAT = "heartbeat"
    ADVERTISEMENT = "advertisement"
    DIAGNOSTIC = "diagnostic"


@dataclasses.dataclass(frozen=True)
class PeriodicMessage:
    """One periodic app message.

    ``expiry_s`` is the slack budget from creation: the message must reach
    the server by ``created_at_s + expiry_s`` (the scheduler's ``T_k``).
    """

    app: str
    origin_device: str
    size_bytes: int
    created_at_s: float
    period_s: float
    expiry_s: float
    kind: MessageKind = MessageKind.HEARTBEAT
    seq: int = dataclasses.field(default_factory=lambda: next(_sequence))
    requires_reply: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")
        if self.expiry_s <= 0:
            raise ValueError(f"expiry_s must be positive, got {self.expiry_s}")

    @property
    def deadline_s(self) -> float:
        """Absolute time by which the message must reach the server."""
        return self.created_at_s + self.expiry_s

    def is_expired(self, now: float) -> bool:
        """Whether the delivery deadline has passed at ``now``."""
        return now > self.deadline_s

    def remaining_slack_s(self, now: float) -> float:
        """Seconds of delivery budget left at ``now`` (may be negative)."""
        return self.deadline_s - now


class HeartbeatMessage(PeriodicMessage):
    """A heartbeat: a :class:`PeriodicMessage` pinned to the heartbeat kind."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs["kind"] = MessageKind.HEARTBEAT
        super().__init__(*args, **kwargs)


class NotRelayableError(ValueError):
    """The message violates the paper's three relayability constraints."""


def validate_relayable(message: PeriodicMessage) -> None:
    """Enforce the paper's constraints for D2D forwarding.

    Raises :class:`NotRelayableError` when the message is too large, needs a
    reply, or carries no delay tolerance worth exploiting.
    """
    if message.size_bytes > MAX_RELAYABLE_BYTES:
        raise NotRelayableError(
            f"{message.size_bytes} B exceeds the {MAX_RELAYABLE_BYTES} B "
            "small-message bound"
        )
    if message.requires_reply:
        raise NotRelayableError("messages that require a reply cannot be relayed")
    if message.expiry_s <= 1.0:
        raise NotRelayableError(
            f"expiry of {message.expiry_s}s leaves no slack for aggregation"
        )
