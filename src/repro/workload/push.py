"""Downlink push notifications — what the heartbeats exist to enable.

An IM heartbeat's whole purpose is keeping the server able to *reach* the
phone: "heartbeat messages are used to support real-time communication or
push notification services" (Sec. II-A). This module closes that loop so
experiments can measure the user-visible effect of a signaling storm:

1. the server pushes to an online client;
2. the page rides the shared control channel
   (:class:`~repro.cellular.paging.PagingChannel`) — a storm can block it;
3. on a successful page the phone wakes, performs its service-request/RRC
   promotion through its own modem (paying real energy and signaling) and
   receives the payload.

Pushing to a client the server considers offline fails immediately —
which is exactly what happens when heartbeats stop arriving.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.cellular.modem import CellularModem
from repro.cellular.paging import PageAttempt, PagingChannel
from repro.sim.engine import Simulator
from repro.workload.server import IMServer

#: Bytes of the service request + ack the woken phone sends uplink.
SERVICE_REQUEST_BYTES = 64


@dataclasses.dataclass
class PushResult:
    """Outcome of one push attempt."""

    device_id: str
    requested_at_s: float
    delivered_at_s: Optional[float] = None
    failure: Optional[str] = None  # "offline" | "paging" | "unregistered"

    @property
    def delivered(self) -> bool:
        return self.delivered_at_s is not None

    @property
    def latency_s(self) -> Optional[float]:
        if self.delivered_at_s is None:
            return None
        return self.delivered_at_s - self.requested_at_s


class PushNotificationService:
    """Server-side push delivery over paging + RRC wake."""

    def __init__(
        self,
        sim: Simulator,
        paging: PagingChannel,
        server: Optional[IMServer] = None,
        app: str = "standard",
        downlink_latency_s: float = 0.3,
    ) -> None:
        self.sim = sim
        self.paging = paging
        self.server = server
        self.app = app
        self.downlink_latency_s = downlink_latency_s
        self._clients: Dict[str, CellularModem] = {}
        self._inboxes: Dict[str, List[object]] = {}
        self.results: List[PushResult] = []

    # ------------------------------------------------------------------
    def register_client(self, device_id: str, modem: CellularModem) -> None:
        """Register a phone's modem so pushes can wake it."""
        if device_id in self._clients:
            raise ValueError(f"client {device_id!r} already registered")
        self._clients[device_id] = modem
        self._inboxes[device_id] = []

    def inbox(self, device_id: str) -> List[object]:
        """Payloads delivered to one client, in order."""
        return list(self._inboxes.get(device_id, []))

    # ------------------------------------------------------------------
    def push(
        self,
        device_id: str,
        payload: object,
        on_result: Optional[Callable[[PushResult], None]] = None,
    ) -> PushResult:
        """Attempt to deliver ``payload`` to ``device_id``."""
        result = PushResult(device_id=device_id, requested_at_s=self.sim.now)
        self.results.append(result)
        if device_id not in self._clients:
            result.failure = "unregistered"
            if on_result is not None:
                on_result(result)
            return result
        if self.server is not None and not self.server.is_online(
            device_id, self.app
        ):
            # the expiration timer lapsed: the server has no reachable
            # binding for this phone — precisely what heartbeats prevent
            result.failure = "offline"
            if on_result is not None:
                on_result(result)
            return result

        def after_page(attempt: PageAttempt) -> None:
            if not attempt.succeeded:
                result.failure = "paging"
                if on_result is not None:
                    on_result(result)
                return
            self._wake_and_deliver(result, payload, on_result)

        self.paging.page(device_id, after_page)
        return result

    def _wake_and_deliver(
        self,
        result: PushResult,
        payload: object,
        on_result: Optional[Callable[[PushResult], None]],
    ) -> None:
        modem = self._clients[result.device_id]
        if not modem.powered_on:
            result.failure = "offline"
            if on_result is not None:
                on_result(result)
            return

        def on_service_request_done(uplink) -> None:
            def deliver() -> None:
                result.delivered_at_s = self.sim.now
                self._inboxes[result.device_id].append(payload)
                if on_result is not None:
                    on_result(result)

            self.sim.schedule(self.downlink_latency_s, deliver,
                              name="push_downlink")

        # the phone answers the page with a service request: a real RRC
        # promotion with real energy and signaling
        modem.send(SERVICE_REQUEST_BYTES, payload=None,
                   on_delivered=on_service_request_done)

    # ------------------------------------------------------------------
    @property
    def delivered_count(self) -> int:
        return sum(1 for r in self.results if r.delivered)

    @property
    def failed_count(self) -> int:
        return sum(1 for r in self.results if r.failure is not None)

    def failure_breakdown(self) -> Dict[str, int]:
        breakdown: Dict[str, int] = {}
        for result in self.results:
            if result.failure is not None:
                breakdown[result.failure] = breakdown.get(result.failure, 0) + 1
        return breakdown

    def mean_latency_s(self) -> float:
        latencies = [r.latency_s for r in self.results if r.delivered]
        return sum(latencies) / len(latencies) if latencies else 0.0
