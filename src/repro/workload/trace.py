"""Trace-driven heartbeat workloads.

The paper's evaluation (and this reproduction's synthetic default) uses
strictly periodic beats. Real deployments drift: phones sleep, apps
restart, schedulers batch timers. This module lets experiments replay a
*recorded* heartbeat schedule instead:

- :class:`HeartbeatTrace` — an in-memory table of (time, device, app,
  size) emission events, loadable from / savable to CSV;
- :func:`synthesize_trace` — generates a realistic trace (per-beat
  jitter, missed beats while the phone sleeps, app restarts that reset
  the phase) when no production capture is available, which is this
  reproduction's stand-in for the operator traces we don't have;
- :class:`TraceReplayGenerator` — drop-in replacement for
  :class:`~repro.workload.generator.HeartbeatGenerator`, feeding a
  Message Monitor (or any ``on_beat``) from the trace.
"""

from __future__ import annotations

import csv
import dataclasses
import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.sim.engine import Simulator
from repro.workload.apps import APP_REGISTRY, AppProfile
from repro.workload.messages import HeartbeatMessage, PeriodicMessage


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded heartbeat emission."""

    time_s: float
    device_id: str
    app: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"event time must be non-negative: {self}")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive: {self}")


class HeartbeatTrace:
    """An ordered collection of heartbeat emissions."""

    def __init__(self, events: Iterable[TraceEvent] = ()) -> None:
        self.events: List[TraceEvent] = sorted(events, key=lambda e: e.time_s)

    def __len__(self) -> int:
        return len(self.events)

    def devices(self) -> List[str]:
        return sorted({e.device_id for e in self.events})

    def for_device(self, device_id: str) -> List[TraceEvent]:
        return [e for e in self.events if e.device_id == device_id]

    def duration_s(self) -> float:
        return self.events[-1].time_s if self.events else 0.0

    def mean_interval_s(self, device_id: str) -> float:
        """Mean gap between one device's consecutive beats."""
        times = [e.time_s for e in self.for_device(device_id)]
        if len(times) < 2:
            return 0.0
        return (times[-1] - times[0]) / (len(times) - 1)

    # ------------------------------------------------------------------
    # CSV round trip
    # ------------------------------------------------------------------
    def save_csv(self, path: str) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time_s", "device_id", "app", "size_bytes"])
            for event in self.events:
                writer.writerow(
                    [event.time_s, event.device_id, event.app, event.size_bytes]
                )

    @classmethod
    def load_csv(cls, path: str) -> "HeartbeatTrace":
        events: List[TraceEvent] = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            required = {"time_s", "device_id", "app", "size_bytes"}
            if reader.fieldnames is None or not required <= set(reader.fieldnames):
                raise ValueError(
                    f"trace CSV must have columns {sorted(required)}"
                )
            for row in reader:
                events.append(TraceEvent(
                    time_s=float(row["time_s"]),
                    device_id=row["device_id"],
                    app=row["app"],
                    size_bytes=int(row["size_bytes"]),
                ))
        return cls(events)


def synthesize_trace(
    device_ids: Sequence[str],
    app: AppProfile,
    duration_s: float,
    rng: random.Random,
    jitter_fraction: float = 0.05,
    miss_probability: float = 0.02,
    restart_rate_per_hour: float = 0.1,
) -> HeartbeatTrace:
    """A production-flavoured trace: jitter, missed beats, app restarts.

    This is the documented substitution for the operator traces the paper's
    authors had and we do not: it exercises the same code paths (irregular
    arrivals at the relay, occasional presence gaps) with controllable,
    seeded statistics.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    if not 0.0 <= miss_probability < 1.0:
        raise ValueError(f"miss probability out of range: {miss_probability}")
    events: List[TraceEvent] = []
    for device_id in device_ids:
        t = rng.uniform(0.0, app.heartbeat_period_s)
        while t < duration_s:
            if rng.random() >= miss_probability:  # beat not missed
                jitter = rng.gauss(0.0, jitter_fraction * app.heartbeat_period_s)
                time_s = min(max(0.0, t + jitter), duration_s)
                events.append(TraceEvent(
                    time_s=time_s,
                    device_id=device_id,
                    app=app.name,
                    size_bytes=app.heartbeat_bytes,
                ))
            # an app restart resets the phase mid-period
            restart_p = restart_rate_per_hour * app.heartbeat_period_s / 3600.0
            if rng.random() < restart_p:
                t += rng.uniform(0.0, app.heartbeat_period_s)
            else:
                t += app.heartbeat_period_s
    return HeartbeatTrace(events)


class TraceReplayGenerator:
    """Replays one device's slice of a trace into ``on_beat``.

    Message expiry comes from the app registry when the app is known,
    else falls back to the trace's own mean interval.
    """

    def __init__(
        self,
        sim: Simulator,
        device_id: str,
        trace: HeartbeatTrace,
        on_beat: Callable[[PeriodicMessage], None],
    ) -> None:
        self.sim = sim
        self.device_id = device_id
        self.on_beat = on_beat
        self.beats_emitted = 0
        self._stopped = False
        self._events = trace.for_device(device_id)
        self._fallback_period = trace.mean_interval_s(device_id) or 270.0

    def start(self) -> "TraceReplayGenerator":
        for event in self._events:
            self.sim.schedule_at(
                event.time_s, self._emit, event, name="trace_beat"
            )
        return self

    def stop(self) -> None:
        self._stopped = True

    def _emit(self, event: TraceEvent) -> None:
        if self._stopped:
            return
        profile = APP_REGISTRY.get(event.app)
        period = profile.heartbeat_period_s if profile else self._fallback_period
        expiry = profile.expiry_s if profile else self._fallback_period
        self.beats_emitted += 1
        self.on_beat(HeartbeatMessage(
            app=event.app,
            origin_device=self.device_id,
            size_bytes=event.size_bytes,
            created_at_s=self.sim.now,
            period_s=max(period, 1.0),
            expiry_s=max(expiry, 1.1),
        ))
