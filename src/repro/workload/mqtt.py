"""MQTT keep-alive codec.

The paper grounds its heartbeat discussion in real protocols: "Facebook
Messenger uses MQTT protocol", and the security argument rests on MQTT's
"lightweight cryptography ... handled with Secure Sockets Layer". This
module implements the relevant slice of MQTT 3.1.1 control-packet
framing — CONNECT's keep-alive field, PINGREQ/PINGRESP, and the
variable-length "remaining length" encoding — plus a wire-size
reconstruction that explains the paper's measured heartbeat sizes
(66-74 B for a 2-byte ping, once TLS and TCP/IP overheads are added).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Tuple


class PacketType(enum.IntEnum):
    """MQTT control-packet types (the subset heartbeats involve)."""

    CONNECT = 1
    CONNACK = 2
    PINGREQ = 12
    PINGRESP = 13
    DISCONNECT = 14


class MqttCodecError(ValueError):
    """Malformed MQTT bytes."""


# ----------------------------------------------------------------------
# remaining-length varint (MQTT 3.1.1 §2.2.3)
# ----------------------------------------------------------------------
MAX_REMAINING_LENGTH = 268_435_455  # 4 bytes of 7-bit digits


def encode_remaining_length(value: int) -> bytes:
    """Encode an MQTT remaining-length varint (1-4 bytes)."""
    if not 0 <= value <= MAX_REMAINING_LENGTH:
        raise MqttCodecError(f"remaining length out of range: {value}")
    out = bytearray()
    while True:
        digit = value % 128
        value //= 128
        if value > 0:
            out.append(digit | 0x80)
        else:
            out.append(digit)
            return bytes(out)


def decode_remaining_length(buffer: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a remaining-length varint; returns (value, bytes consumed)."""
    multiplier = 1
    value = 0
    consumed = 0
    while True:
        if offset + consumed >= len(buffer):
            raise MqttCodecError("truncated remaining length")
        byte = buffer[offset + consumed]
        value += (byte & 0x7F) * multiplier
        consumed += 1
        if not byte & 0x80:
            return value, consumed
        multiplier *= 128
        if consumed > 4:
            raise MqttCodecError("remaining length longer than 4 bytes")


# ----------------------------------------------------------------------
# packets
# ----------------------------------------------------------------------
def encode_pingreq() -> bytes:
    """The heartbeat itself: a 2-byte PINGREQ."""
    return bytes([PacketType.PINGREQ << 4, 0])


def encode_pingresp() -> bytes:
    return bytes([PacketType.PINGRESP << 4, 0])


def encode_connect(client_id: str, keepalive_s: int) -> bytes:
    """A minimal CONNECT with the keep-alive interval the server enforces.

    The keep-alive field is exactly the heartbeat period contract: the
    server may drop a client it hasn't heard from within 1.5× this value
    (MQTT 3.1.1 §3.1.2.10) — the expiration-timer mechanism of Sec. II-A.
    """
    if not 0 <= keepalive_s <= 0xFFFF:
        raise MqttCodecError(f"keepalive out of range: {keepalive_s}")
    client = client_id.encode("utf-8")
    if len(client) > 0xFFFF:
        raise MqttCodecError("client id too long")
    variable_header = (
        b"\x00\x04MQTT"  # protocol name
        + bytes([4])  # protocol level 3.1.1
        + bytes([0b0000_0010])  # clean session
        + keepalive_s.to_bytes(2, "big")
    )
    payload = len(client).to_bytes(2, "big") + client
    body = variable_header + payload
    return (
        bytes([PacketType.CONNECT << 4])
        + encode_remaining_length(len(body))
        + body
    )


@dataclasses.dataclass(frozen=True)
class MqttPacket:
    """A decoded control packet header (+ keepalive when CONNECT)."""

    packet_type: PacketType
    remaining_length: int
    total_length: int
    keepalive_s: int = 0
    client_id: str = ""


def decode_packet(buffer: bytes) -> MqttPacket:
    """Decode the packet at the start of ``buffer``."""
    if len(buffer) < 2:
        raise MqttCodecError("packet shorter than a fixed header")
    try:
        packet_type = PacketType(buffer[0] >> 4)
    except ValueError:
        raise MqttCodecError(f"unknown packet type {buffer[0] >> 4}") from None
    remaining, consumed = decode_remaining_length(buffer, 1)
    total = 1 + consumed + remaining
    if len(buffer) < total:
        raise MqttCodecError("truncated packet body")
    keepalive = 0
    client_id = ""
    if packet_type == PacketType.CONNECT:
        body = buffer[1 + consumed : total]
        if len(body) < 12 or body[:6] != b"\x00\x04MQTT":
            raise MqttCodecError("malformed CONNECT header")
        keepalive = int.from_bytes(body[8:10], "big")
        id_length = int.from_bytes(body[10:12], "big")
        client_id = body[12 : 12 + id_length].decode("utf-8")
    return MqttPacket(
        packet_type=packet_type,
        remaining_length=remaining,
        total_length=total,
        keepalive_s=keepalive,
        client_id=client_id,
    )


# ----------------------------------------------------------------------
# wire-size reconstruction (why a 2-byte ping measures as ~66-74 B)
# ----------------------------------------------------------------------
#: TLS 1.2 record overhead: 5 B header + MAC/padding (cipher-dependent).
TLS_RECORD_OVERHEAD_RANGE = (21, 37)
#: IPv4 (20) + TCP (20, no options) headers.
TCP_IP_OVERHEAD = 40


def estimated_wire_bytes(
    application_bytes: int = 2, tls_overhead: int = 29
) -> int:
    """On-the-wire size of one application message over TLS/TCP/IP.

    With the default mid-range TLS overhead, a 2-byte PINGREQ measures
    ≈ 71 B — squarely inside the paper's observed heartbeat sizes
    (WhatsApp 66 B, WeChat 74 B), which is the cross-check that those
    measurements are TLS-framed keep-alive pings.
    """
    if application_bytes < 0 or tls_overhead < 0:
        raise MqttCodecError("sizes must be non-negative")
    return application_bytes + tls_overhead + TCP_IP_OVERHEAD
