"""Command-line interface.

Runs the canned experiments without writing any Python::

    repro-sim pair --ues 1 --periods 7
    repro-sim crowd --devices 40 --duration 1800
    repro-sim sweep --max-periods 8 --workers 4
    repro-sim grid --workers 4 --cache-dir ~/.cache/repro-sweeps
    repro-sim chaos --profiles mild,adversarial --seeds 0,1
    repro-sim ran --profiles ran-outage,paging-storm --seeds 0,1
    repro-sim breakeven
    repro-sim table1
    repro-sim calibration

Every subcommand prints a paper-style table; `pair`, `crowd` and `sweep`
run both the D2D framework and the original baseline for comparison.
`sweep` and `grid` accept `--workers N` to fan grid points out over a
process pool and `--cache-dir PATH` to re-serve unchanged points from
the on-disk result cache; both print the sweep's measured timings.

`pair` and `crowd` take `--chaos-profile NAME` (with `--chaos-seed N`)
to layer stochastic faults on the D2D run and audit delivery safety;
`chaos` runs the differential harness over profiles × seeds and exits
nonzero on any safety regression; `ran` runs the cellular-side
(degraded-RAN) differential — baseline vs RAN chaos vs replay — and
gates on silent-loss-free accounting plus byte-identical replay. `sweep` and `grid` accept
`--runner NAME --param key=v1,v2,...` to fan out any registered grid
runner (see `repro.scenarios.RUNNER_REGISTRY`) without writing Python.
"""

from __future__ import annotations

import argparse
import functools
import inspect
import random
import sys
from typing import Dict, List, Optional

from repro.analysis import saved_percent
from repro.core.modes import breakeven_distance_m
from repro.energy.profiles import DEFAULT_PROFILE
from repro.reporting import format_series, format_table, percent
from repro.scenarios import (
    relay_savings_runner,
    run_crowd_scenario,
    run_relay_scenario,
)
from repro.sweep import SweepFailure, grid_sweep
from repro.workload.apps import APP_REGISTRY
from repro.workload.traffic import heartbeat_share_table


def _print_channel_summary(result) -> None:
    """One-line channel-layer report for a `--channel sinr` run."""
    stats = result.metrics.channel
    if stats is None:
        return
    mean_rate = stats["mean_rate_bps"]
    print(
        f"channel ({stats['allocator']}, {stats['num_rbs']} RBs): "
        f"{stats['transfers']} transfers, "
        f"mean SINR {stats['mean_sinr_db']:.1f} dB, "
        f"mean rate {mean_rate / 1e6:.2f} Mb/s, "
        f"RB utilization {stats['rb_utilization']:.1%}, "
        f"peak co-channel leases {stats['rb_peak_live']}"
        if stats["transfers"]
        else "channel: no D2D transfers"
    )
    density = stats.get("density") or {}
    if len(density) > 1:
        buckets = ", ".join(
            f"k={k}: {bucket['mean_rate_bps'] / 1e6:.2f} Mb/s "
            f"(n={bucket['transfers']})"
            for k, bucket in density.items()
        )
        print(f"rate vs concurrent-transfer density: {buckets}")


def _print_chaos_outcome(result) -> int:
    """Report a chaos-enabled run's fault/audit outcome; 1 on violations."""
    if result.chaos_report is not None:
        print(result.chaos_report.summary())
    faults = result.metrics.faults
    if faults is not None and (
        faults.bs_outages or faults.bs_brownouts
        or faults.pages_injected or faults.detaches
    ):
        dropped = (
            faults.beats_dropped_stale
            + faults.beats_dropped_overflow
            + faults.beats_dropped_retries
        )
        print(
            f"ran: {faults.bs_outages} outage(s), "
            f"{faults.bs_brownouts} brown-out(s), "
            f"{faults.pages_injected} pages injected, "
            f"{faults.uplinks_rejected} uplinks rejected, "
            f"detach/reattach {faults.detaches}/{faults.reattaches}, "
            f"{faults.cellular_retries} retries, {dropped} dropped, "
            f"{faults.beats_buffered_end} still held"
        )
    if result.audit_report is not None:
        print(result.audit_report.summary())
        if not result.audit_report.ok:
            return 1
    return 0


def _cmd_pair(args: argparse.Namespace) -> int:
    d2d = run_relay_scenario(
        n_ues=args.ues, distance_m=args.distance, periods=args.periods,
        capacity=args.capacity, seed=args.seed, mode="d2d",
        chaos=args.chaos_profile, chaos_seed=args.chaos_seed,
        channel=args.channel, allocator=args.allocator,
        num_rbs=args.num_rbs, shadowing_sigma_db=args.shadowing_sigma,
        selection_policy=args.selection_policy,
    )
    base = run_relay_scenario(
        n_ues=args.ues, distance_m=args.distance, periods=args.periods,
        capacity=args.capacity, seed=args.seed, mode="original",
    )
    print(format_table(
        ["", "L3 msgs", "Energy (µAh)", "On-time"],
        [
            ["original", base.total_l3(), base.system_energy_uah(),
             base.on_time_fraction()],
            ["d2d", d2d.total_l3(), d2d.system_energy_uah(),
             d2d.on_time_fraction()],
        ],
        title=(f"pair: 1 relay + {args.ues} UE(s) @ {args.distance} m, "
               f"{args.periods} periods"),
    ))
    print(f"signaling saved : "
          f"{saved_percent(base.total_l3(), d2d.total_l3()):.1f}%")
    print(f"energy saved    : "
          f"{saved_percent(base.system_energy_uah(), d2d.system_energy_uah()):.1f}%")
    _print_channel_summary(d2d)
    return _print_chaos_outcome(d2d)


def _cmd_crowd_sharded(args: argparse.Namespace) -> int:
    """`crowd --shards N`: the same storm on the cell-sharded kernel."""
    from repro.shard import run_crowd_scenario_sharded

    try:
        result = run_crowd_scenario_sharded(
            n_devices=args.devices, relay_fraction=args.relay_fraction,
            duration_s=args.duration, seed=args.seed,
            mobile_fraction=args.mobile_fraction,
            shards=args.shards,
            backend=args.shard_backend or "serial",
            shard_plan=args.shard_plan or "bands",
            channel=args.channel, chaos=args.chaos_profile,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    delivery = result.metrics.delivery
    print(format_table(
        ["Shards", "Plan", "Backend", "Windows", "Handovers", "Ghosts",
         "L3 msgs", "Energy (µAh)", "On-time"],
        [[result.params.n_shards, result.params.shard_plan, result.backend,
          result.windows, result.handovers, result.ghost_registrations,
          result.metrics.total_l3_messages,
          result.metrics.total_energy_uah(),
          delivery.on_time_fraction if delivery else 1.0]],
        title=(f"sharded crowd: {args.devices} devices over "
               f"{result.params.n_shards} shards, {args.duration:.0f} s"),
    ))
    print(
        f"devices per shard: {result.devices_per_shard} "
        f"(max/mean skew {result.device_skew:.2f})"
    )
    print(format_table(
        ["Shard", "Devices", "Events", "Work (s)", "Barrier wait (s)",
         "Handovers", "Ghosts"],
        [[load["shard"], load["devices"], load["events"],
          f"{load['work_s']:.3f}", f"{load['barrier_wait_s']:.3f}",
          load["handovers"], load["ghost_registrations"]]
         for load in result.shard_load],
        title=(f"per-shard load (critical path "
               f"{result.critical_path_s:.3f} s of "
               f"{result.total_work_s:.3f} s total window work)"),
    ))
    return 0


def _cmd_crowd(args: argparse.Namespace) -> int:
    if (args.shards or 1) > 1:
        return _cmd_crowd_sharded(args)
    d2d = run_crowd_scenario(
        n_devices=args.devices, relay_fraction=args.relay_fraction,
        duration_s=args.duration, mobile_fraction=args.mobile_fraction,
        seed=args.seed, mode="d2d",
        chaos=args.chaos_profile, chaos_seed=args.chaos_seed,
        channel=args.channel, allocator=args.allocator,
        num_rbs=args.num_rbs, shadowing_sigma_db=args.shadowing_sigma,
        selection_policy=args.selection_policy,
    )
    base = run_crowd_scenario(
        n_devices=args.devices, relay_fraction=args.relay_fraction,
        duration_s=args.duration, mobile_fraction=args.mobile_fraction,
        seed=args.seed, mode="original",
    )
    print(format_table(
        ["", "L3 msgs", "peak L3/s", "Energy (µAh)", "On-time"],
        [
            ["original", base.total_l3(),
             base.context.basestation.peak_signaling_rate(60.0),
             base.system_energy_uah(), base.on_time_fraction()],
            ["d2d", d2d.total_l3(),
             d2d.context.basestation.peak_signaling_rate(60.0),
             d2d.system_energy_uah(), d2d.on_time_fraction()],
        ],
        title=(f"crowd: {args.devices} devices, "
               f"{args.relay_fraction:.0%} relays, {args.duration:.0f} s"),
    ))
    print(f"signaling saved : "
          f"{saved_percent(base.total_l3(), d2d.total_l3()):.1f}%")
    print(f"beats via D2D   : {d2d.framework.total_beats_forwarded()}"
          f" (fallbacks {d2d.framework.total_cellular_fallbacks()})")
    _print_channel_summary(d2d)
    return _print_chaos_outcome(d2d)


def _coerce_param(token: str):
    """`--param` value token → int | float | str (first cast that fits)."""
    token = token.strip()
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            continue
    return token


def _parse_param_grid(entries: Optional[List[str]]) -> Dict[str, List[object]]:
    """Repeatable `--param key=v1,v2,...` flags → grid_sweep axes."""
    grid: Dict[str, List[object]] = {}
    for entry in entries or []:
        key, sep, values = entry.partition("=")
        axis = [_coerce_param(v) for v in values.split(",") if v.strip()]
        if not sep or not key.strip() or not axis:
            raise ValueError(
                f"bad --param {entry!r}; expected key=v1,v2,... "
                "with at least one value"
            )
        grid[key.strip()] = axis
    return grid


def _cmd_runner_sweep(args: argparse.Namespace) -> int:
    """`sweep`/`grid` with `--runner NAME`: registry-dispatched fan-out."""
    from repro.scenarios import RUNNER_REGISTRY

    runner = RUNNER_REGISTRY.get(args.runner)
    if runner is None:
        print(f"unknown runner {args.runner!r}; "
              f"known: {', '.join(sorted(RUNNER_REGISTRY))}", file=sys.stderr)
        return 2
    try:
        grid = _parse_param_grid(args.param)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if not grid:
        print("--runner needs at least one --param key=v1,v2,...",
              file=sys.stderr)
        return 2
    accepted = inspect.signature(runner).parameters
    unknown = [name for name in grid if name not in accepted]
    if unknown:
        print(f"runner {args.runner!r} does not accept parameter(s) "
              f"{', '.join(sorted(unknown))}; it takes: "
              f"{', '.join(accepted)}", file=sys.stderr)
        return 2
    fixed = {}
    chaos_profile = getattr(args, "chaos_profile", None)
    if chaos_profile is not None and "chaos_profile" in accepted:
        fixed["chaos_profile"] = chaos_profile
    chaos_seed = getattr(args, "chaos_seed", None)
    if chaos_seed is not None and "chaos_seed" in accepted:
        fixed["chaos_seed"] = chaos_seed
    for flag, param in (
        ("channel", "channel"),
        ("allocator", "allocator"),
        ("num_rbs", "num_rbs"),
        ("shadowing_sigma", "shadowing_sigma_db"),
        ("selection_policy", "selection_policy"),
        ("shards", "shards"),
        ("shard_backend", "shard_backend"),
        ("shard_plan", "shard_plan"),
    ):
        value = getattr(args, flag, None)
        if value is not None and param in accepted and param not in grid:
            fixed[param] = value
    if fixed:
        runner = functools.partial(runner, **fixed)
    try:
        sweep = grid_sweep(
            grid, runner,
            workers=args.workers, cache_dir=args.cache_dir,
            backend=args.backend, max_retries=args.max_retries,
            on_error="keep-going" if args.keep_going else "raise",
        )
    except SweepFailure as failure:
        return _print_sweep_failure(failure)
    _print_sweep_errors(sweep)
    param_names = list(grid)
    metric_names = sorted({k for p in sweep.points for k in p.metrics})
    print(format_table(
        param_names + metric_names,
        [[p.params.get(n) for n in param_names]
         + [p.metrics.get(m, "n/a") for m in metric_names]
         for p in sweep.points],
        title=f"runner {args.runner!r} over {' × '.join(param_names)}",
    ))
    print(sweep.telemetry.summary())
    return 0 if sweep.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.runner is not None:
        return _cmd_runner_sweep(args)
    ks = list(range(1, args.max_periods + 1))
    runner = functools.partial(relay_savings_runner, n_ues=args.ues,
                               seed=args.seed)
    try:
        sweep = grid_sweep(
            {"periods": ks}, runner,
            workers=args.workers, cache_dir=args.cache_dir,
            backend=args.backend, max_retries=args.max_retries,
            on_error="keep-going" if args.keep_going else "raise",
        )
    except SweepFailure as failure:
        return _print_sweep_failure(failure)
    _print_sweep_errors(sweep)
    saved_system = [100.0 * v for __, v in sweep.series("periods", "system_saved")]
    saved_ue = [100.0 * v for __, v in sweep.series("periods", "ue_saved")]
    print(format_series(
        "k", ks, {"system saved %": saved_system, "ue saved %": saved_ue},
        title=f"saved energy vs transmission times ({args.ues} UE(s))",
    ))
    print(sweep.telemetry.summary())
    return 0 if sweep.ok else 1


def _print_sweep_errors(sweep) -> None:
    """Tabulate a keep-going sweep's failed points, if any."""
    if not sweep.errors:
        return
    print(format_table(
        ["point", "params", "attempts", "host", "error"],
        [[e.index, str(dict(e.params)), e.attempts, e.host, e.error]
         for e in sweep.errors],
        title="FAILED points (kept going; cached points are resumable)",
    ))


def _print_sweep_failure(failure: SweepFailure) -> int:
    """Strict-mode sweep abort: report every failed point, exit nonzero."""
    print(failure, file=sys.stderr)
    for error in failure.errors:
        print(f"  point {error.index} {dict(error.params)}: {error.error} "
              f"(attempts {error.attempts}, host {error.host})",
              file=sys.stderr)
    if failure.telemetry is not None:
        print(failure.telemetry.summary(), file=sys.stderr)
    return 1


def _cmd_grid(args: argparse.Namespace) -> int:
    if args.status is not None:
        return _print_grid_status(args.status, args.claim_ttl)
    if args.runner is not None:
        return _cmd_runner_sweep(args)

    from repro.experiments import sensitivity_grid

    distances = [float(v) for v in args.distances.split(",") if v]
    periods = [int(v) for v in args.periods.split(",") if v]
    try:
        sweep = sensitivity_grid(
            distances=distances, periods=periods, seed=args.seed,
            workers=args.workers, cache_dir=args.cache_dir,
            backend=args.backend, max_retries=args.max_retries,
            on_error="keep-going" if args.keep_going else "raise",
            claim_ttl_s=args.claim_ttl,
        )
    except SweepFailure as failure:
        return _print_sweep_failure(failure)
    _print_sweep_errors(sweep)
    pivot = sweep.pivot("distance_m", "periods", "system_saved")
    print(format_table(
        ["distance \\ k"] + [str(k) for k in periods],
        [[f"{d:g} m"] + [pivot.get(d, {}).get(k, "n/a") for k in periods]
         for d in distances],
        title="system energy saved (fraction) over distance × periods",
        float_format="{:+.3f}",
    ))
    if args.timings:
        print(format_table(
            ["point", "params", "seconds", "cached", "attempts"],
            [[t.index, str(t.params), f"{t.seconds:.4f}", t.cached, t.attempts]
             for t in sorted(sweep.telemetry.timings, key=lambda t: t.index)],
            title="per-point wall-clock timings",
        ))
    print(sweep.telemetry.summary())
    return 0 if sweep.ok else 1


def _print_grid_status(cache_dir: str, claim_ttl_s: float) -> int:
    """`grid --status DIR`: progress view of a distributed sweep in flight."""
    from repro.sweep import sweep_status

    try:
        status = sweep_status(cache_dir, ttl_s=claim_ttl_s)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    for manifest in status.manifests:
        print(f"grid: params={manifest.get('param_names')} "
              f"total={manifest.get('total')} tag={manifest.get('tag')!r} "
              f"started by {manifest.get('host')}")
    if status.claims:
        print(format_table(
            ["point key", "host", "age (s)", "state"],
            [[c.key[:12], c.host, f"{c.age_s:.1f}",
              "STALE" if c.stale else "active"]
             for c in status.claims],
            title="claims in flight",
        ))
    if status.errors:
        print(format_table(
            ["point key", "host", "attempts", "error"],
            [[e.key[:12], e.host, e.attempts, e.error] for e in status.errors],
            title="failed points",
        ))
    print(status.summary())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Differential chaos harness: audited baseline vs audited chaos."""
    from repro.faults.harness import run_differential_suite

    profiles = ([p for p in args.profiles.split(",") if p]
                if args.profiles else None)
    seeds = [int(s) for s in args.seeds.split(",") if s]
    scenarios = tuple(s for s in args.scenarios.split(",") if s)
    suite = run_differential_suite(
        profiles=profiles, seeds=seeds, scenarios=scenarios,
        n_ues=args.ues, periods=args.periods,
        n_devices=args.devices, duration_s=args.duration,
    )
    print(format_table(
        ["scenario", "profile", "seed", "status", "safe", "violations",
         "events", "fallbacks", "failures"],
        [[c.scenario, c.profile, c.seed,
          "PASS" if c.passed else "FAIL",
          c.chaos_deadline_safe, c.audit_violations, c.chaos_events,
          c.fallbacks_fired, "; ".join(c.failures)]
         for c in suite.cases],
        title="differential chaos harness (baseline vs chaos, audited)",
    ))
    print(f"{len(suite.cases) - len(suite.failed_cases)}"
          f"/{len(suite.cases)} cases passed")
    return 0 if suite.passed else 1


def _cmd_ran(args: argparse.Namespace) -> int:
    """Degraded-RAN differential: baseline vs RAN chaos vs replay."""
    import json

    from repro.faults.harness import run_ran_differential

    profiles = [p for p in args.profiles.split(",") if p]
    seeds = [int(s) for s in args.seeds.split(",") if s]
    scenario_names = [s for s in args.scenarios.split(",") if s]
    cases = []
    for scenario in scenario_names:
        for profile in profiles:
            for seed in seeds:
                cases.append(run_ran_differential(
                    scenario=scenario, profile=profile, seed=seed,
                    n_ues=args.ues, periods=args.periods,
                    n_devices=args.devices, duration_s=args.duration,
                ))
    print(format_table(
        ["scenario", "profile", "seed", "status", "safe", "violations",
         "outages", "brownouts", "rejected", "detach/reattach", "dropped",
         "replay", "failures"],
        [[c.scenario, c.profile, c.seed,
          "PASS" if c.passed else "FAIL",
          c.chaos_deadline_safe, c.chaos_violations,
          c.bs_outages, c.bs_brownouts, c.uplinks_rejected,
          f"{c.detaches}/{c.reattaches}", c.beats_dropped,
          "ok" if c.replay_identical else "DIVERGED",
          "; ".join(c.failures)]
         for c in cases],
        title="degraded-RAN differential (baseline vs RAN chaos vs replay)",
    ))
    passed = sum(1 for c in cases if c.passed)
    print(f"{passed}/{len(cases)} cases passed")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "passed": passed == len(cases),
                    "cases": [c.to_dict() for c in cases],
                },
                fh, indent=2, sort_keys=True,
            )
        print(f"wrote {args.report}")
    return 0 if passed == len(cases) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Pinned perf suite → table + BENCH_<rev>.json (+ regression gate)."""
    import json

    from repro.bench import (
        STORM_TARGET_SPEEDUP,
        compare_reports,
        run_suite,
        write_report,
    )

    try:
        report = run_suite(quick=args.quick, repeats=args.repeats,
                           only=args.only)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    rows = []
    for name, case in report["cases"].items():
        speedup = case.get("speedup")
        rows.append([
            name,
            f"{case['wall_s']:.3f}",
            f"{speedup:.2f}x" if speedup is not None else "-",
            {True: "yes", False: "DIVERGED"}.get(
                case.get("identical_metrics"), "-"
            ),
        ])
    print(format_table(
        ["case", "wall (s)", "idx/brute speedup", "identical"],
        rows,
        title=f"perf suite (rev {report['rev']}, "
              f"{'quick' if args.quick else 'full'})",
    ))
    status = 0
    storm = report["cases"].get("crowd-500-storm")
    if storm is not None:
        met = storm["speedup"] >= STORM_TARGET_SPEEDUP
        print(f"crowd-500-storm speedup: {storm['speedup']:.2f}x "
              f"(target >= {STORM_TARGET_SPEEDUP:.0f}x: "
              f"{'met' if met else 'NOT met'})")
    for name, case in report["cases"].items():
        if case.get("identical_metrics") is False:
            print(f"FAIL {name}: indexed and brute-force runs diverged",
                  file=sys.stderr)
            status = 1
    if not args.no_write:
        path = write_report(report, out_dir=args.out)
        print(f"wrote {path}")
    if args.compare is not None:
        try:
            with open(args.compare, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.compare!r}: {exc}",
                  file=sys.stderr)
            return 2
        failures = compare_reports(report, baseline, tolerance=args.tolerance)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(f"no regression vs {args.compare} "
                  f"(tolerance {args.tolerance:.0%})")
    return status


def _cmd_breakeven(args: argparse.Namespace) -> int:
    print("D2D-vs-cellular breakeven distance (UE side):")
    for beats in (1, 2, 3, 5, 7, 10):
        distance = breakeven_distance_m(expected_beats=beats)
        print(f"  {beats:2d} beats/session → {distance:5.1f} m")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    apps = ["wechat", "qq", "whatsapp", "facebook"]
    shares = heartbeat_share_table(
        apps, window_s=args.days * 86_400.0, rng=random.Random(args.seed),
        repeats=3,
    )
    print(format_table(
        ["App", "Paper", "Measured"],
        [
            [name, percent(APP_REGISTRY[name].heartbeat_share),
             percent(shares[name])]
            for name in apps
        ],
        title="Table I — heartbeat share of messages",
    ))
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.viz import render_timeline

    result = run_relay_scenario(
        n_ues=args.ues, distance_m=args.distance, periods=args.periods,
        seed=args.seed, keep_energy_log=True,
    )
    horizon = result.metrics.horizon_s
    print(f"1 relay + {args.ues} UE(s) @ {args.distance} m, "
          f"{args.periods} periods ({horizon:.0f} s)")
    print(render_timeline(result.devices.values(), horizon, width=args.width))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import REGISTRY, run_experiment

    if args.id is None or args.id.lower() == "list":
        print(format_table(
            ["Id", "Artifact"],
            [[exp_id, description] for exp_id, (description, __) in
             sorted(REGISTRY.items())],
            title="Registered paper experiments",
        ))
        return 0
    try:
        description, __ = REGISTRY[args.id.upper()]
    except KeyError:
        print(f"unknown experiment {args.id!r}; try 'experiment list'",
              file=sys.stderr)
        return 2
    print(f"{args.id.upper()}: {description}")
    result = run_experiment(args.id)
    _print_experiment_result(result)
    return 0


def _print_experiment_result(result) -> None:
    """Best-effort tabulation of an experiment's return value."""
    if isinstance(result, dict) and all(
        isinstance(v, (int, float)) for v in result.values()
    ):
        print(format_table(["Key", "Value"], [[k, v] for k, v in result.items()]))
        return
    if isinstance(result, dict) and all(
        isinstance(v, dict) for v in result.values()
    ):
        for key, block in result.items():
            print(format_table(
                ["Key", "Value"], [[k, v] for k, v in block.items()],
                title=str(key),
            ))
        return
    if isinstance(result, dict):  # name → series
        lengths = {len(v) for v in result.values()}
        if len(lengths) == 1:
            n = lengths.pop()
            print(format_series("k", list(range(1, n + 1)), result))
            return
    if isinstance(result, (list, tuple)) and result and all(
        isinstance(v, (int, float)) for v in result
    ):
        print(format_series("k", list(range(1, len(result) + 1)),
                            {"value": list(result)}))
        return
    if (
        isinstance(result, tuple)
        and result
        and all(isinstance(part, (list, dict)) for part in result)
    ):
        for i, part in enumerate(result):
            print(f"-- part {i + 1} --")
            _print_experiment_result(part)
        return
    print(result)


def _cmd_calibration(args: argparse.Namespace) -> int:
    p = DEFAULT_PROFILE
    rows = [
        ["UE discovery", p.ue_discovery_uah, "Table III"],
        ["UE connection", p.ue_connection_uah, "Table III"],
        ["UE forward (per msg)", p.ue_forward_uah, "Table III"],
        ["Relay discovery", p.relay_discovery_uah, "Table III"],
        ["Relay connection", p.relay_connection_uah, "Table III"],
        ["Relay receive (per msg)", p.relay_receive_uah, "Table IV slope"],
        ["Relay receive (coalesced)", p.relay_receive_coalesced_uah,
         "Fig. 10/11 wake analysis"],
        ["Cellular setup", p.cellular_setup_uah, "Fig. 7 decomposition"],
        ["Cellular tx base", p.cellular_tx_base_uah, "Fig. 7 decomposition"],
        ["Cellular tail", p.cellular_tail_uah, "Fig. 7 decomposition"],
        ["Cellular heartbeat (54 B)", p.cellular_heartbeat_uah(),
         "55% UE-saving anchor"],
    ]
    print(format_table(["Quantity (µAh)", "Value", "Provenance"], rows,
                       title="Energy calibration (src/repro/energy/profiles.py)"))
    return 0


def _add_channel_flags(parser: argparse.ArgumentParser) -> None:
    """Channel-layer flags shared by scenario and sweep subcommands."""
    parser.add_argument(
        "--channel", default=None, choices=["fixed", "sinr"],
        help="transfer model: 'fixed' (calibrated constants, default) or "
             "'sinr' (interference-aware Shannon-capacity rates over "
             "shared resource blocks)")
    parser.add_argument(
        "--allocator", default="centralized",
        choices=["centralized", "message-passing"],
        help="resource-block allocator for --channel sinr")
    parser.add_argument(
        "--num-rbs", type=int, default=6,
        help="shared resource blocks for --channel sinr (default 6)")
    parser.add_argument(
        "--shadowing-sigma", type=float, default=None, metavar="DB",
        help="override the link model's lognormal shadowing sigma (dB), "
             "the Zafaruddin et al. fading-regime axis")
    parser.add_argument(
        "--selection-policy", default=None,
        choices=["distance", "rate", "hybrid"],
        help="relay ranking: 'distance' (the paper's shortest-distance "
             "rule, default), 'rate' (highest channel-predicted rate) or "
             "'hybrid' (rate near-tie group, shortest distance inside); "
             "rate/hybrid need --channel sinr")


def _add_shard_flags(parser: argparse.ArgumentParser) -> None:
    """Cell-sharded kernel flags shared by crowd and sweep subcommands."""
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run crowds on the cell-sharded kernel with N shards "
             "(N > 1; devices are partitioned by serving-cell column)")
    parser.add_argument(
        "--shard-backend", default=None, choices=["serial", "process"],
        help="sharded execution: all shards in-process ('serial', the "
             "reference) or one worker process per shard ('process'); "
             "both produce byte-identical metrics")
    parser.add_argument(
        "--shard-plan", default=None, choices=["bands", "tiles"],
        help="cell-to-shard partition: legacy column 'bands' (default; "
             "needs one cell column per shard) or load-balanced "
             "rectangular 'tiles' packed from the initial device density")


def _add_chaos_flags(parser: argparse.ArgumentParser) -> None:
    """Chaos-injection flags shared by scenario and sweep subcommands."""
    parser.add_argument(
        "--chaos-profile", default=None, metavar="NAME",
        help="layer stochastic fault processes on the D2D run and audit "
             "delivery safety (mild | relay-hostile | link-hostile | "
             "adversarial | ran-outage | paging-storm | degraded-ran)")
    parser.add_argument(
        "--chaos-seed", type=int, default=None,
        help="chaos RNG seed (default: the scenario --seed)")


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    """Registry-dispatch flags shared by `sweep` and `grid`."""
    parser.add_argument(
        "--runner", default=None, metavar="NAME",
        help="dispatch a registered grid runner instead of the built-in "
             "sweep (see repro.scenarios.RUNNER_REGISTRY); needs --param")
    parser.add_argument(
        "--param", action="append", default=None, metavar="KEY=V1,V2,...",
        help="one grid axis for --runner (repeatable); values are "
             "coerced to int/float where possible")


def _add_dispatch_flags(parser: argparse.ArgumentParser) -> None:
    """Shared execution-layer flags of the `sweep` and `grid` subcommands."""
    parser.add_argument(
        "--backend", default=None,
        choices=["serial", "process-pool", "shared-dir"],
        help="execution backend (default: inferred from --workers; "
             "shared-dir requires --cache-dir and may run concurrently "
             "with other dispatchers on the same directory)")
    parser.add_argument(
        "--max-retries", type=int, default=0,
        help="extra attempts per point before it counts as failed")
    parser.add_argument(
        "--keep-going", action="store_true",
        help="report failed points in the result instead of aborting "
             "the sweep")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="D2D heartbeat relaying framework — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pair = sub.add_parser("pair", help="1 relay + n UEs vs. the original system")
    pair.add_argument("--ues", type=int, default=1)
    pair.add_argument("--distance", type=float, default=1.0)
    pair.add_argument("--periods", type=int, default=7)
    pair.add_argument("--capacity", type=int, default=10)
    pair.add_argument("--seed", type=int, default=0)
    _add_chaos_flags(pair)
    _add_channel_flags(pair)
    pair.set_defaults(func=_cmd_pair)

    crowd = sub.add_parser("crowd", help="clustered-crowd signaling storm")
    crowd.add_argument("--devices", type=int, default=40)
    crowd.add_argument("--relay-fraction", type=float, default=0.2)
    crowd.add_argument("--duration", type=float, default=1800.0)
    crowd.add_argument("--mobile-fraction", type=float, default=0.0,
                       help="fraction of devices random-waypointing "
                            "through the arena")
    crowd.add_argument("--seed", type=int, default=0)
    _add_shard_flags(crowd)
    _add_chaos_flags(crowd)
    _add_channel_flags(crowd)
    crowd.set_defaults(func=_cmd_crowd)

    sweep = sub.add_parser("sweep", help="saved energy vs. transmission times")
    sweep.add_argument("--ues", type=int, default=1)
    sweep.add_argument("--max-periods", type=int, default=8)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=0,
                       help="process-pool size; <=1 runs serially")
    sweep.add_argument("--cache-dir", default=None,
                       help="on-disk sweep result cache directory")
    _add_dispatch_flags(sweep)
    _add_runner_flags(sweep)
    _add_shard_flags(sweep)
    _add_chaos_flags(sweep)
    _add_channel_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    grid = sub.add_parser(
        "grid", help="sensitivity grid over distance × periods (parallel)"
    )
    grid.add_argument("--distances", default="1,8,15,19",
                      help="comma-separated distances in metres")
    grid.add_argument("--periods", default="1,3,7",
                      help="comma-separated transmission counts")
    grid.add_argument("--seed", type=int, default=0)
    grid.add_argument("--workers", type=int, default=0,
                      help="process-pool size; <=1 runs serially")
    grid.add_argument("--cache-dir", default=None,
                      help="on-disk sweep result cache directory")
    grid.add_argument("--timings", action="store_true",
                      help="print the per-point wall-clock timing table")
    _add_dispatch_flags(grid)
    _add_runner_flags(grid)
    _add_shard_flags(grid)
    _add_chaos_flags(grid)
    _add_channel_flags(grid)
    grid.add_argument("--status", metavar="CACHE_DIR", default=None,
                      help="print the progress view of a (distributed) "
                           "sweep's shared cache directory and exit")
    grid.add_argument("--claim-ttl", type=float, default=120.0,
                      help="seconds before an abandoned shared-dir claim "
                           "may be stolen (also used by --status)")
    grid.set_defaults(func=_cmd_grid)

    chaos = sub.add_parser(
        "chaos", help="differential chaos harness (delivery-safety gate)"
    )
    chaos.add_argument("--scenarios", default="pair",
                       help="comma-separated scenario names (pair, crowd)")
    chaos.add_argument("--profiles", default=None,
                       help="comma-separated chaos profiles "
                            "(default: all built-ins)")
    chaos.add_argument("--seeds", default="0,1,2,3,4",
                       help="comma-separated seeds per (scenario, profile)")
    chaos.add_argument("--ues", type=int, default=2,
                       help="UEs in the pair scenario")
    chaos.add_argument("--periods", type=int, default=4,
                       help="heartbeat periods in the pair scenario")
    chaos.add_argument("--devices", type=int, default=12,
                       help="devices in the crowd scenario")
    chaos.add_argument("--duration", type=float, default=900.0,
                       help="crowd scenario duration in seconds")
    chaos.set_defaults(func=_cmd_chaos)

    ran = sub.add_parser(
        "ran", help="degraded-RAN differential (no-silent-loss gate)"
    )
    ran.add_argument("--scenarios", default="pair",
                     help="comma-separated scenario names (pair, crowd)")
    ran.add_argument("--profiles", default="ran-outage,paging-storm",
                     help="comma-separated RAN chaos profiles "
                          "(ran-outage | paging-storm | degraded-ran)")
    ran.add_argument("--seeds", default="0,1",
                     help="comma-separated seeds per (scenario, profile)")
    ran.add_argument("--ues", type=int, default=2,
                     help="UEs in the pair scenario")
    ran.add_argument("--periods", type=int, default=4,
                     help="heartbeat periods in the pair scenario")
    ran.add_argument("--devices", type=int, default=12,
                     help="devices in the crowd scenario")
    ran.add_argument("--duration", type=float, default=900.0,
                     help="crowd scenario duration in seconds")
    ran.add_argument("--report", default=None, metavar="PATH",
                     help="write the case list as JSON (CI artifact)")
    ran.set_defaults(func=_cmd_ran)

    bench = sub.add_parser(
        "bench", help="pinned perf suite; writes BENCH_<rev>.json"
    )
    bench.add_argument("--quick", action="store_true",
                       help="smaller cases, skip the 500-device storm "
                            "(the CI perf-smoke configuration)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timed repeats per case, keeping the minimum "
                            "(default: 3, or 2 with --quick)")
    bench.add_argument("--only", default=None, metavar="CASES",
                       help="run selected case(s) by name, comma-separated "
                            "(e.g. crowd-5000-sharded,crowd-20000-balanced), "
                            "even ones --quick drops")
    bench.add_argument("--out", default="benchmarks",
                       help="directory for BENCH_<rev>.json")
    bench.add_argument("--no-write", action="store_true",
                       help="don't write the report file")
    bench.add_argument("--compare", default=None, metavar="BASELINE_JSON",
                       help="fail if the gate case's speedup regressed "
                            "more than --tolerance vs this baseline")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="allowed relative speedup regression "
                            "(default 0.25)")
    bench.set_defaults(func=_cmd_bench)

    breakeven = sub.add_parser("breakeven", help="D2D-vs-cellular distances")
    breakeven.set_defaults(func=_cmd_breakeven)

    table1 = sub.add_parser("table1", help="regenerate Table I")
    table1.add_argument("--days", type=float, default=7.0)
    table1.add_argument("--seed", type=int, default=2017)
    table1.set_defaults(func=_cmd_table1)

    calibration = sub.add_parser("calibration", help="print the energy model")
    calibration.set_defaults(func=_cmd_calibration)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure by id (or 'list')"
    )
    experiment.add_argument("id", nargs="?", default="list")
    experiment.set_defaults(func=_cmd_experiment)

    timeline = sub.add_parser(
        "timeline", help="ASCII radio-activity timeline of a session"
    )
    timeline.add_argument("--ues", type=int, default=2)
    timeline.add_argument("--distance", type=float, default=1.0)
    timeline.add_argument("--periods", type=int, default=3)
    timeline.add_argument("--width", type=int, default=72)
    timeline.add_argument("--seed", type=int, default=0)
    timeline.set_defaults(func=_cmd_timeline)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
