"""Runtime delivery-safety auditor.

The paper's reliability argument (Sec. III-A) is that feedback/fallback
makes D2D forwarding *strictly safe*: whatever kills a relay, every
heartbeat still reaches the server by its deadline. The
:class:`InvariantAuditor` checks that claim — and its supporting
invariants — *while the simulation runs*, by wrapping the hooks the
protocol already exposes (monitor handlers, feedback acks/fallbacks,
scheduler offers, reward credits, server receives, power transitions):

- **delivery safety** — every emitted heartbeat whose deadline falls
  inside the run is delivered on time (D2D-acked aggregate or cellular
  fallback), unless its origin device was powered off during the beat's
  lifetime (a dead phone owes nobody a heartbeat);
- **duplicate accounting** — a beat both acked and fallback-resent must
  show up at the server at least twice (the duplicate is *observed*,
  never silently collapsed);
- **capacity** — a relay's collected count ``k`` never exceeds ``M``;
- **honest incentives** — no relay credit for beats the server has not
  received (credits ≤ relayed deliveries at all times);
- **energy sanity** — batteries never go negative.

When the *cellular side* is itself a fault domain (base-station outages,
brown-outs, paging storms — :mod:`repro.faults.chaos` RAN processes),
"delivered by deadline" is no longer achievable for every beat and the
safety contract changes shape. The auditor then additionally checks:

- **no silent heartbeat loss** — every emitted beat is delivered,
  still held by a degraded-mode sender (buffered or awaiting a retry),
  or dropped *with a recorded cause*; an unaccounted beat under RAN
  chaos is a ``silent-loss`` violation;
- **buffer bounds** — no store-and-forward buffer ever exceeds its
  configured capacity;
- **backoff monotonicity** — within one retry/probe episode the
  pre-jitter delays never decrease, and jitter stays within the
  configured fraction;
- **reattach liveness** — after the cell restores from an outage, every
  detached sender reattaches within the profile-declared bound
  (:attr:`InvariantAuditor.reattach_bound_s`).

Beats whose delivery window overlapped a degraded-RAN interval are
adjudicated *outage-aware*: late or sender-held beats are exempt rather
than violations, and the report separates them out so the
deadline-safety metric can be computed against the healthy population.

Violations carry a snapshot of the most recent protocol events (a
bounded trace ring) so the first failure is debuggable without re-running
with tracing enabled. Everything is recorded deterministically — two
runs with identical seeds produce identical :class:`AuditReport`\\ s.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.cellular.basestation import RanState

#: How many protocol events each violation snapshot keeps.
TRACE_LEN = 64

#: Slack between a reward credit (uplink cleared the air interface) and
#: the server sink having run — comfortably above the core latency.
CREDIT_SETTLE_S = 1.0


@dataclasses.dataclass(frozen=True)
class TraceEntry:
    """One protocol event in the bounded audit trace."""

    time_s: float
    kind: str
    subject: str
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class AuditViolation:
    """One invariant breach, with the trace that led up to it."""

    kind: str
    time_s: float
    subject: str
    detail: str
    trace: Tuple[TraceEntry, ...] = ()

    def __str__(self) -> str:
        return f"[{self.time_s:10.1f}s] {self.kind} on {self.subject}: {self.detail}"


@dataclasses.dataclass
class BeatRecord:
    """Lifecycle of one emitted heartbeat, as the auditor observed it."""

    seq: int
    app: str
    origin: str
    created_at_s: float
    deadline_s: float
    on_time_deliveries: int = 0
    late_deliveries: int = 0
    acked: bool = False
    fallback_fired: bool = False

    @property
    def delivered(self) -> bool:
        return self.on_time_deliveries + self.late_deliveries > 0


@dataclasses.dataclass
class AuditReport:
    """Structured outcome of one audited run."""

    violations: List[AuditViolation] = dataclasses.field(default_factory=list)
    beats_tracked: int = 0
    beats_adjudicated: int = 0
    beats_on_time: int = 0
    beats_exempt_downtime: int = 0
    beats_exempt_ran: int = 0
    beats_dropped_accounted: int = 0
    beats_buffered_end: int = 0
    acks_observed: int = 0
    fallbacks_observed: int = 0
    ack_and_fallback_beats: int = 0
    deliveries_observed: int = 0
    finalized: bool = False
    horizon_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.finalized and not self.violations

    @property
    def first_violation(self) -> Optional[AuditViolation]:
        return self.violations[0] if self.violations else None

    def violations_of(self, kind: str) -> List[AuditViolation]:
        return [v for v in self.violations if v.kind == kind]

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["ok"] = self.ok
        return data

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        lines = [
            f"audit {status}: {self.beats_adjudicated}/{self.beats_tracked} "
            f"beats adjudicated, {self.beats_on_time} on time, "
            f"{self.beats_exempt_downtime} exempt (device down), "
            f"{self.acks_observed} acks, {self.fallbacks_observed} fallbacks, "
            f"{self.ack_and_fallback_beats} ack+fallback duplicates"
        ]
        if self.beats_exempt_ran:
            lines.append(
                f"  RAN-degraded: {self.beats_exempt_ran} exempt "
                f"({self.beats_dropped_accounted} dropped with cause, "
                f"{self.beats_buffered_end} still held by senders)"
            )
        lines.extend(str(v) for v in self.violations[:10])
        if len(self.violations) > 10:
            lines.append(f"... and {len(self.violations) - 10} more")
        return "\n".join(lines)


class InvariantAuditor:
    """Subscribes to a simulation's protocol hooks and audits invariants.

    Attach *after* the scenario is wired and *before* the clock starts::

        auditor = InvariantAuditor(sim, server=server, rewards=ledger)
        auditor.attach_framework(framework, devices)
        ... run ...
        report = auditor.finalize(horizon_s)

    Attach the auditor before any chaos engine: ack-suppression then
    wraps *outside* the audit hook, so the auditor only ever sees acks
    the UE really received.
    """

    def __init__(self, sim, server=None, rewards=None) -> None:
        self.sim = sim
        self.server = server
        self.rewards = rewards
        self.report = AuditReport()
        self._trace: Deque[TraceEntry] = deque(maxlen=TRACE_LEN)
        self._beats: Dict[int, BeatRecord] = {}
        #: device_id → list of [down_at, up_at) intervals (up may be None)
        self._downtime: Dict[str, List[List[Optional[float]]]] = {}
        self._server_attached = False
        self._rewards_attached = False
        self._rewards = None
        #: reattach-liveness bound (seconds after cell restore); 0 means the
        #: active chaos profile declared no bound, so the check is skipped
        self.reattach_bound_s: float = 0.0
        self._basestation = None
        #: [down_at, up_at) hard-outage intervals of the serving cell
        self._ran_down: List[List[Optional[float]]] = []
        #: [start, end) intervals where the cell was not fully UP
        self._ran_degraded: List[List[Optional[float]]] = []
        self._fallback_senders: List[object] = []
        #: beat seq → recorded drop cause (first drop wins)
        self._drop_causes: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # recording primitives
    # ------------------------------------------------------------------
    def _note(self, kind: str, subject: str, detail: str = "") -> None:
        self._trace.append(
            TraceEntry(time_s=self.sim.now, kind=kind, subject=subject, detail=detail)
        )

    def _violate(self, kind: str, subject: str, detail: str) -> None:
        self.report.violations.append(
            AuditViolation(
                kind=kind,
                time_s=self.sim.now,
                subject=subject,
                detail=detail,
                trace=tuple(self._trace),
            )
        )

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach_framework(self, framework, devices: Dict[str, object]) -> "InvariantAuditor":
        """Wire every hook of a built framework scenario."""
        for device in devices.values():
            self.attach_device(device)
        for agent in framework.ues.values():
            self.attach_ue(agent)
        for agent in framework.relays.values():
            self.attach_relay(agent)
        for sender in framework.standalones.values():
            self.attach_monitor(sender.monitor)
            self.attach_fallback(sender.cellular)
        if self.server is not None:
            self.attach_server(self.server)
        if self.rewards is not None:
            self.attach_rewards(self.rewards)
        return self

    def attach_original(self, original, devices: Dict[str, object]) -> "InvariantAuditor":
        """Wire the hooks of an original-system (no-D2D) build."""
        for device in devices.values():
            self.attach_device(device)
        for monitor in original.monitors.values():
            self.attach_monitor(monitor)
        for sender in original.fallback_senders.values():
            self.attach_fallback(sender)
        if self.server is not None:
            self.attach_server(self.server)
        return self

    def attach_device(self, device) -> None:
        """Track power transitions (downtime exempts delivery)."""
        device_id = device.device_id
        self._downtime.setdefault(device_id, [])
        original_off = device.power_off
        original_on = getattr(device, "power_on", None)

        def audited_off() -> None:
            was_alive = device.alive
            original_off()
            if was_alive:
                self._downtime[device_id].append([self.sim.now, None])
                self._note("power-off", device_id)
            self._check_battery(device)

        device.power_off = audited_off  # type: ignore[method-assign]
        if original_on is not None:
            def audited_on() -> None:
                was_dead = not device.alive
                original_on()
                if was_dead and device.alive:
                    intervals = self._downtime[device_id]
                    if intervals and intervals[-1][1] is None:
                        intervals[-1][1] = self.sim.now
                    self._note("power-on", device_id)

            device.power_on = audited_on  # type: ignore[method-assign]
        self._chain_energy(device)

    def attach_monitor(self, monitor) -> None:
        """Observe every beat emission the monitor admits."""
        original_handler = monitor.handler

        def audited_handler(message) -> None:
            self._observe_beat(message)
            original_handler(message)

        monitor.handler = audited_handler

    def attach_basestation(self, basestation) -> None:
        """Track the serving cell's RAN state (outage + degraded intervals)."""
        if self._basestation is not None:
            return
        self._basestation = basestation
        if basestation.ran_state is RanState.DOWN:
            self._ran_down.append([self.sim.now, None])
        if basestation.ran_state is not RanState.UP:
            self._ran_degraded.append([self.sim.now, None])

        def on_ran_state(time_s: float, old: RanState, new: RanState) -> None:
            if new is RanState.DOWN and old is not RanState.DOWN:
                self._ran_down.append([time_s, None])
            elif old is RanState.DOWN and new is not RanState.DOWN:
                if self._ran_down and self._ran_down[-1][1] is None:
                    self._ran_down[-1][1] = time_s
            if old is RanState.UP and new is not RanState.UP:
                self._ran_degraded.append([time_s, None])
            elif new is RanState.UP and old is not RanState.UP:
                if self._ran_degraded and self._ran_degraded[-1][1] is None:
                    self._ran_degraded[-1][1] = time_s
            self._note("ran-state", "cell", f"{old.value} -> {new.value}")

        basestation.subscribe_ran(on_ran_state)

    def attach_fallback(self, sender) -> None:
        """Audit one degraded-mode sender: drops, backoff, jitter bounds."""
        if any(existing is sender for existing in self._fallback_senders):
            return
        self._fallback_senders.append(sender)
        device_id = sender.device.device_id
        jitter_bound = sender.config.jitter_fraction
        #: (kind, episode key) → last pre-jitter base delay observed
        last_base: Dict[Tuple[str, int], float] = {}

        previous_drop = sender.on_drop

        def audited_drop(message, cause: str) -> None:
            self._drop_causes.setdefault(message.seq, cause)
            self._note("drop", device_id, f"seq={message.seq} cause={cause}")
            if previous_drop is not None:
                previous_drop(message, cause)

        sender.on_drop = audited_drop

        previous_backoff = sender.on_backoff

        def audited_backoff(kind: str, key: int, base_s: float, actual_s: float) -> None:
            prior = last_base.get((kind, key))
            if prior is not None and base_s < prior - 1e-9:
                self._violate(
                    "backoff-nonmonotone",
                    device_id,
                    f"{kind} episode {key}: base delay {base_s:.3f}s after "
                    f"{prior:.3f}s without a reset",
                )
            last_base[(kind, key)] = base_s
            if base_s > 0 and abs(actual_s / base_s - 1.0) > jitter_bound + 1e-9:
                self._violate(
                    "jitter-out-of-bounds",
                    device_id,
                    f"{kind} episode {key}: actual {actual_s:.3f}s vs base "
                    f"{base_s:.3f}s exceeds ±{jitter_bound:.0%}",
                )
            self._note("backoff", device_id, f"{kind}#{key} base={base_s:.2f}s")
            if previous_backoff is not None:
                previous_backoff(kind, key, base_s, actual_s)

        sender.on_backoff = audited_backoff

        previous_reset = sender.on_backoff_reset

        def audited_reset(kind: str, key: int) -> None:
            last_base.pop((kind, key), None)
            if previous_reset is not None:
                previous_reset(kind, key)

        sender.on_backoff_reset = audited_reset

    def attach_ue(self, agent) -> None:
        """Observe forwards/acks/fallbacks of one UE agent."""
        self.attach_monitor(agent.monitor)
        self.attach_fallback(agent.cellular)
        tracker = agent.feedback
        device_id = agent.device.device_id
        original_ack = tracker.ack

        def audited_ack(beat_seqs) -> int:
            seqs = list(beat_seqs)
            for seq in seqs:
                record = self._beats.get(seq)
                if record is not None and tracker.is_pending(seq):
                    record.acked = True
                    self.report.acks_observed += 1
            self._note("ack", device_id, f"seqs={seqs}")
            return original_ack(seqs)

        tracker.ack = audited_ack  # type: ignore[method-assign]
        original_fallback = tracker.on_fallback

        def audited_fallback(message) -> None:
            record = self._beats.get(message.seq)
            if record is not None:
                record.fallback_fired = True
            self.report.fallbacks_observed += 1
            self._note("fallback", device_id, f"seq={message.seq}")
            original_fallback(message)

        tracker.on_fallback = audited_fallback

    def attach_relay(self, agent) -> None:
        """Observe collections/flushes and enforce the capacity bound."""
        self.attach_monitor(agent.monitor)
        self.attach_fallback(agent.cellular)
        scheduler = agent.scheduler
        device_id = agent.device.device_id
        capacity = scheduler.config.capacity
        original_offer = scheduler.offer

        def audited_offer(beat) -> bool:
            admitted = original_offer(beat)
            pending = scheduler.pending_count
            if pending > capacity:
                self._violate(
                    "capacity-exceeded",
                    device_id,
                    f"k={pending} > M={capacity} after seq {beat.message.seq}",
                )
            if admitted:
                self._note("collect", device_id, f"seq={beat.message.seq} k={pending}")
            return admitted

        scheduler.offer = audited_offer  # type: ignore[method-assign]
        original_flush = scheduler.on_flush

        def audited_flush(own, collected, reason) -> None:
            self._note(
                "flush", device_id,
                f"{'own+' if own is not None else ''}{len(collected)} ({reason})",
            )
            original_flush(own, collected, reason)

        scheduler.on_flush = audited_flush

    def attach_server(self, server) -> None:
        if self._server_attached:
            return
        self._server_attached = True
        original_receive = server.receive

        def audited_receive(message, via_device, time_s=None):
            record_out = original_receive(message, via_device, time_s)
            self.report.deliveries_observed += 1
            record = self._beats.get(message.seq)
            if record is not None:
                if record_out.on_time:
                    record.on_time_deliveries += 1
                else:
                    record.late_deliveries += 1
                    if (
                        record.on_time_deliveries == 0
                        and not self._was_down(
                            record.origin, record.created_at_s, record.deadline_s
                        )
                        and not self._ran_degraded_overlap(
                            record.created_at_s, record.deadline_s
                        )
                    ):
                        self._violate(
                            "deadline-missed",
                            record.origin,
                            f"seq {message.seq} ({message.app}) delivered at "
                            f"{record_out.delivered_at_s:.1f}s, deadline "
                            f"{record.deadline_s:.1f}s",
                        )
            self._note(
                "deliver", via_device,
                f"seq={message.seq} {'on-time' if record_out.on_time else 'LATE'}",
            )
            return record_out

        server.receive = audited_receive  # type: ignore[method-assign]

    def attach_rewards(self, rewards) -> None:
        if self._rewards_attached:
            return
        self._rewards_attached = True
        self._rewards = rewards
        original_credit = rewards.credit_collection

        def audited_credit(time_s, relay_id, beats):
            account = original_credit(time_s, relay_id, beats)
            # The relay is credited when the uplink clears the air
            # interface; the server sink runs one core latency later.
            # Check the books once that transport slack has passed.
            self.sim.schedule(
                CREDIT_SETTLE_S, self._check_credits, relay_id,
                name="audit_credit_check",
            )
            self._note("credit", relay_id, f"beats={beats}")
            return account

        rewards.credit_collection = audited_credit  # type: ignore[method-assign]

    def _check_credits(self, relay_id: str) -> None:
        if self.server is None or self._rewards is None:
            return
        if self._rewards.total_beats > self.server.relayed_count:
            self._violate(
                "phantom-credit",
                relay_id,
                f"credited beats {self._rewards.total_beats} > relayed "
                f"deliveries {self.server.relayed_count}",
            )

    # ------------------------------------------------------------------
    def _chain_energy(self, device) -> None:
        energy = device.energy
        previous = energy.on_charge

        def audited_charge(time_s, phase, uah, duration_s) -> None:
            if previous is not None:
                previous(time_s, phase, uah, duration_s)
            self._check_battery(device)

        energy.on_charge = audited_charge

    def _check_battery(self, device) -> None:
        battery = device.battery
        if battery is not None and battery.remaining_mah < 0.0:
            self._violate(
                "negative-energy",
                device.device_id,
                f"battery at {battery.remaining_mah:.3f} mAh",
            )

    def _observe_beat(self, message) -> None:
        if message.seq in self._beats:
            return
        self._beats[message.seq] = BeatRecord(
            seq=message.seq,
            app=message.app,
            origin=message.origin_device,
            created_at_s=message.created_at_s,
            deadline_s=message.deadline_s,
        )
        self.report.beats_tracked += 1
        self._note("emit", message.origin_device, f"seq={message.seq} {message.app}")

    def _was_down(self, device_id: str, start_s: float, end_s: float) -> bool:
        """Whether ``device_id`` was powered off anywhere in [start, end]."""
        for down_at, up_at in self._downtime.get(device_id, []):
            if down_at <= end_s and (up_at is None or up_at >= start_s):
                return True
        return False

    def _ran_degraded_overlap(self, start_s: float, end_s: float) -> bool:
        """Whether the serving cell was not fully UP anywhere in [start, end]."""
        for began_at, ended_at in self._ran_degraded:
            if began_at <= end_s and (ended_at is None or ended_at >= start_s):
                return True
        return False

    def _reattach_breach(
        self, episode, bound: float, horizon_s: float
    ) -> Optional[float]:
        """First restore the episode missed its liveness bound after.

        A breach requires a restore ``r`` after the detach such that the
        cell then stayed up for the full ``[r, r + bound]`` window inside
        the run, yet the sender had not reattached by ``r + bound``.
        Windows cut short by a follow-up outage or by the horizon don't
        count — the sender never got a fair chance to probe successfully.
        """
        restores = sorted(
            up_at
            for down_at, up_at in self._ran_down
            if up_at is not None and up_at >= episode.detached_at_s
        )
        down_starts = sorted(down_at for down_at, _ in self._ran_down)
        for restore in restores:
            deadline = restore + bound
            if episode.reattached_at_s is not None and (
                episode.reattached_at_s <= deadline
            ):
                return None  # reattached within bound of this restore
            next_down = next(
                (d for d in down_starts if d > restore), float("inf")
            )
            if deadline <= min(next_down, horizon_s):
                return restore  # full stable window missed
        return None

    # ------------------------------------------------------------------
    def finalize(self, horizon_s: float) -> AuditReport:
        """Adjudicate every beat whose deadline fell inside the run."""
        if self.report.finalized:
            return self.report
        self.report.finalized = True
        self.report.horizon_s = horizon_s
        # end-of-run book check: deferred per-credit checks scheduled past
        # the horizon never ran, so settle the incentive ledger here too
        if self._rewards is not None and self.server is not None:
            if self._rewards.total_beats > self.server.relayed_count:
                self._violate(
                    "phantom-credit",
                    "ledger",
                    f"credited beats {self._rewards.total_beats} > relayed "
                    f"deliveries {self.server.relayed_count} at end of run",
                )
        self._check_sender_bounds(horizon_s)
        held_seqs = set()
        for sender in self._fallback_senders:
            held_seqs.update(sender.pending_seqs())
        for seq in sorted(self._beats):
            record = self._beats[seq]
            if record.deadline_s > horizon_s:
                continue  # deadline beyond the run; not adjudicable
            self.report.beats_adjudicated += 1
            drop_cause = self._drop_causes.get(seq)
            held = seq in held_seqs
            ran_overlap = self._ran_degraded_overlap(
                record.created_at_s, record.deadline_s
            )
            if record.acked and record.fallback_fired:
                self.report.ack_and_fallback_beats += 1
                # under RAN chaos the fallback copy may legitimately have
                # been rejected, buffered, or dropped — only demand the
                # duplicate when the cell never degraded in the window
                if record.on_time_deliveries + record.late_deliveries < 2 and not (
                    drop_cause is not None or held or ran_overlap
                ):
                    self._violate(
                        "ack-and-fallback",
                        record.origin,
                        f"seq {seq} acked and fallback-resent but seen "
                        f"{record.on_time_deliveries + record.late_deliveries} "
                        "time(s) at the server",
                    )
            if record.on_time_deliveries > 0:
                self.report.beats_on_time += 1
                continue
            if self._was_down(record.origin, record.created_at_s, record.deadline_s):
                self.report.beats_exempt_downtime += 1
                continue
            if drop_cause is not None:
                # accounted loss: the degraded-mode sender recorded a cause
                self.report.beats_dropped_accounted += 1
                self.report.beats_exempt_ran += 1
                continue
            if held:
                # still owned by a sender (buffered or awaiting a retry)
                self.report.beats_buffered_end += 1
                self.report.beats_exempt_ran += 1
                continue
            if record.delivered:
                # late delivery; already adjudicated at receive time
                if ran_overlap:
                    self.report.beats_exempt_ran += 1
                continue
            self._violate(
                "silent-loss" if ran_overlap else "undelivered",
                record.origin,
                f"seq {seq} ({record.app}) emitted at "
                f"{record.created_at_s:.1f}s never reached the server "
                f"(deadline {record.deadline_s:.1f}s)"
                + (
                    " — lost without drop accounting during RAN degradation"
                    if ran_overlap
                    else ""
                ),
            )
        return self.report

    def _check_sender_bounds(self, horizon_s: float) -> None:
        """Buffer-bound and reattach-liveness checks over every sender."""
        for sender in self._fallback_senders:
            device_id = sender.device.device_id
            if sender.buffered_peak > sender.config.buffer_capacity:
                self._violate(
                    "buffer-bound",
                    device_id,
                    f"store-and-forward peak {sender.buffered_peak} exceeds "
                    f"capacity {sender.config.buffer_capacity}",
                )
            bound = self.reattach_bound_s
            if not bound:
                continue
            for index, episode in enumerate(sender.episodes):
                restore = self._reattach_breach(episode, bound, horizon_s)
                if restore is None:
                    continue
                when = (
                    "never"
                    if episode.reattached_at_s is None
                    else f"at {episode.reattached_at_s:.1f}s"
                )
                self._violate(
                    "reattach-liveness",
                    device_id,
                    f"episode {index}: detached {episode.detached_at_s:.1f}s, "
                    f"cell stably restored {restore:.1f}s, reattached {when} "
                    f"(bound {bound:.0f}s)",
                )
