"""Differential chaos harness.

Runs a scenario twice from the same seed — audited baseline versus
audited chaos — and asserts the paper's strict-safety claim: whatever the
fault processes do, delivery-rate and deadline-safety never drop. This is
the acceptance gate the CI ``chaos-smoke`` job and the soak workflow run.

A case **fails** when any of:

- either run's invariant auditor reports a violation;
- the chaos run's audited deadline-safety (on-time fraction of
  adjudicated, non-exempt beats) is below 1.0;
- the chaos run's audited deadline-safety drops below the baseline's.

Raw server-side ``on_time_fraction`` is reported for context but not
gated: chaos legitimately adds *duplicate* fallback deliveries whose
second copy can arrive late, and kills devices whose beats nobody owes.
The audited figure already accounts for both.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Union

from repro.faults.chaos import CHAOS_PROFILES, ChaosProfile, resolve_profile

#: Scenario names the harness knows how to drive.
SCENARIOS = ("pair", "crowd")

#: Default sweep used by the acceptance gate and the CLI ``chaos`` command.
DEFAULT_SEEDS = (0, 1, 2, 3, 4)


@dataclasses.dataclass
class DifferentialCase:
    """Outcome of one (scenario, profile, seed) differential run."""

    scenario: str
    profile: str
    seed: int
    baseline_on_time: float
    chaos_on_time: float
    baseline_deadline_safe: float
    chaos_deadline_safe: float
    audit_violations: int
    baseline_violations: int
    chaos_events: int
    fallbacks_fired: int
    failures: List[str] = dataclasses.field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["passed"] = self.passed
        return data

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL " + "; ".join(self.failures)
        return (
            f"{self.scenario}/{self.profile} seed={self.seed}: {status} "
            f"(safe {self.chaos_deadline_safe:.3f}, "
            f"violations {self.audit_violations}, "
            f"chaos events {self.chaos_events}, "
            f"fallbacks {self.fallbacks_fired})"
        )


@dataclasses.dataclass
class DifferentialSuite:
    """All cases of one harness invocation."""

    cases: List[DifferentialCase] = dataclasses.field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.cases) and all(c.passed for c in self.cases)

    @property
    def failed_cases(self) -> List[DifferentialCase]:
        return [c for c in self.cases if not c.passed]

    def to_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "cases": [c.to_dict() for c in self.cases],
        }

    def summary(self) -> str:
        lines = [c.summary() for c in self.cases]
        lines.append(
            f"differential: {len(self.cases) - len(self.failed_cases)}"
            f"/{len(self.cases)} cases passed"
        )
        return "\n".join(lines)


def _run_scenario(
    scenario: str,
    seed: int,
    chaos: Optional[ChaosProfile],
    chaos_seed: Optional[int],
    n_ues: int,
    periods: int,
    n_devices: int,
    duration_s: float,
    channel: Optional[str] = None,
    selection_policy: Optional[str] = None,
):
    from repro import scenarios

    if scenario == "pair":
        return scenarios.run_relay_scenario(
            n_ues=n_ues,
            periods=periods,
            seed=seed,
            chaos=chaos,
            chaos_seed=chaos_seed,
            audit=True,
            channel=channel,
            selection_policy=selection_policy,
        )
    if scenario == "crowd":
        return scenarios.run_crowd_scenario(
            n_devices=n_devices,
            duration_s=duration_s,
            seed=seed,
            chaos=chaos,
            chaos_seed=chaos_seed,
            audit=True,
            channel=channel,
            selection_policy=selection_policy,
        )
    raise ValueError(f"unknown scenario {scenario!r}; known: {SCENARIOS}")


def run_differential(
    scenario: str = "pair",
    profile: Union[str, ChaosProfile] = "mild",
    seed: int = 0,
    n_ues: int = 2,
    periods: int = 4,
    n_devices: int = 12,
    duration_s: float = 900.0,
    channel: Optional[str] = None,
    selection_policy: Optional[str] = None,
) -> DifferentialCase:
    """One differential case: audited baseline vs audited chaos run.

    ``channel="sinr"`` runs *both* legs under the interference-aware
    capacity layer, asserting the safety contract also holds when
    capacity-derived transfer durations replace the fixed constants;
    ``selection_policy`` additionally applies one of the matcher's
    relay-selection policies (``"rate"``/``"hybrid"``) to both legs.
    """
    resolved = resolve_profile(profile)
    assert resolved is not None
    baseline = _run_scenario(
        scenario, seed, None, None, n_ues, periods, n_devices, duration_s,
        channel=channel, selection_policy=selection_policy,
    )
    chaotic = _run_scenario(
        scenario, seed, resolved, seed, n_ues, periods, n_devices, duration_s,
        channel=channel, selection_policy=selection_policy,
    )
    baseline_violations = (
        len(baseline.audit_report.violations) if baseline.audit_report else 0
    )
    chaos_violations = (
        len(chaotic.audit_report.violations) if chaotic.audit_report else 0
    )
    baseline_safe = baseline.deadline_safe_fraction()
    chaos_safe = chaotic.deadline_safe_fraction()
    fallbacks = (
        chaotic.metrics.faults.fallbacks_fired
        if chaotic.metrics.faults is not None
        else 0
    )
    case = DifferentialCase(
        scenario=scenario,
        profile=resolved.name,
        seed=seed,
        baseline_on_time=baseline.on_time_fraction(),
        chaos_on_time=chaotic.on_time_fraction(),
        baseline_deadline_safe=baseline_safe,
        chaos_deadline_safe=chaos_safe,
        audit_violations=chaos_violations,
        baseline_violations=baseline_violations,
        chaos_events=(
            chaotic.chaos_report.total_events if chaotic.chaos_report else 0
        ),
        fallbacks_fired=fallbacks,
    )
    if baseline_violations:
        first = baseline.audit_report.first_violation
        case.failures.append(f"baseline audit: {first}")
    if chaos_violations:
        first = chaotic.audit_report.first_violation
        case.failures.append(f"chaos audit: {first}")
    if chaos_safe < 1.0:
        case.failures.append(f"deadline safety {chaos_safe:.4f} < 1.0")
    if chaos_safe < baseline_safe:
        case.failures.append(
            f"deadline safety dropped {baseline_safe:.4f} → {chaos_safe:.4f}"
        )
    return case


@dataclasses.dataclass
class ChannelDifferentialCase:
    """Outcome of one audited fixed-vs-channel comparison run.

    Both legs run the identical scenario and seed; the only difference
    is the transfer model. The safety contract: the invariant auditor
    stays clean in *both* modes and the channel run keeps audited
    deadline safety at 1.0 — RB contention may slow transfers, never
    break delivery.
    """

    scenario: str
    seed: int
    fixed_violations: int
    channel_violations: int
    fixed_deadline_safe: float
    channel_deadline_safe: float
    channel_transfers: int
    channel_peak_live: int
    failures: List[str] = dataclasses.field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["passed"] = self.passed
        return data

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL " + "; ".join(self.failures)
        return (
            f"{self.scenario} seed={self.seed} fixed-vs-channel: {status} "
            f"(safe {self.channel_deadline_safe:.3f}, "
            f"violations {self.channel_violations}, "
            f"transfers {self.channel_transfers}, "
            f"peak co-channel leases {self.channel_peak_live})"
        )


def run_channel_differential(
    scenario: str = "crowd",
    seed: int = 0,
    n_ues: int = 2,
    periods: int = 4,
    n_devices: int = 12,
    duration_s: float = 900.0,
    chaos: Optional[Union[str, ChaosProfile]] = None,
    selection_policy: Optional[str] = None,
) -> ChannelDifferentialCase:
    """Audited fixed-cost run vs audited ``channel="sinr"`` run.

    With ``chaos`` set, both legs additionally run under that fault
    profile — the composition case (link flaps + RB contention) the
    chaos/channel interaction tests gate on. ``selection_policy``
    applies a matcher relay-selection policy to the channel leg only
    (the fixed leg has no channel model, so channel-aware policies fall
    back to distance there by construction) — the differential that
    shows channel-aware selection preserves the delivery contract.
    """
    resolved = resolve_profile(chaos) if chaos is not None else None
    fixed = _run_scenario(
        scenario, seed, resolved, seed if resolved else None,
        n_ues, periods, n_devices, duration_s, channel=None,
        selection_policy=selection_policy,
    )
    channel = _run_scenario(
        scenario, seed, resolved, seed if resolved else None,
        n_ues, periods, n_devices, duration_s, channel="sinr",
        selection_policy=selection_policy,
    )
    fixed_violations = (
        len(fixed.audit_report.violations) if fixed.audit_report else 0
    )
    channel_violations = (
        len(channel.audit_report.violations) if channel.audit_report else 0
    )
    stats = channel.metrics.channel or {}
    case = ChannelDifferentialCase(
        scenario=scenario,
        seed=seed,
        fixed_violations=fixed_violations,
        channel_violations=channel_violations,
        fixed_deadline_safe=fixed.deadline_safe_fraction(),
        channel_deadline_safe=channel.deadline_safe_fraction(),
        channel_transfers=int(stats.get("transfers", 0)),
        channel_peak_live=int(stats.get("rb_peak_live", 0)),
    )
    if fixed_violations:
        case.failures.append(
            f"fixed-mode audit: {fixed.audit_report.first_violation}"
        )
    if channel_violations:
        case.failures.append(
            f"channel-mode audit: {channel.audit_report.first_violation}"
        )
    if resolved is None and case.channel_deadline_safe < 1.0:
        case.failures.append(
            f"channel deadline safety {case.channel_deadline_safe:.4f} < 1.0"
        )
    if case.channel_deadline_safe < case.fixed_deadline_safe:
        case.failures.append(
            f"deadline safety dropped {case.fixed_deadline_safe:.4f} → "
            f"{case.channel_deadline_safe:.4f} under channel mode"
        )
    return case


@dataclasses.dataclass
class RanDifferentialCase:
    """Outcome of one audited baseline-vs-RAN-chaos comparison run.

    Three legs from one (scenario, profile, seed): an audited healthy-RAN
    baseline, an audited RAN-chaos run, and a *replay* of the chaos run.
    The contract: zero auditor violations on both distinct legs (every
    beat delivered, buffered, or dropped with a recorded cause; reattach
    within the profile's bound after every outage), outage-aware deadline
    safety at 1.0, and the replay byte-identical — same comparable
    metrics, same chaos event stream.
    """

    scenario: str
    profile: str
    seed: int
    baseline_violations: int
    chaos_violations: int
    baseline_deadline_safe: float
    chaos_deadline_safe: float
    chaos_events: int
    bs_outages: int
    bs_brownouts: int
    rrc_rejections: int
    pages_injected: int
    uplinks_rejected: int
    detaches: int
    reattaches: int
    beats_dropped: int
    beats_buffered_end: int
    replay_identical: bool
    failures: List[str] = dataclasses.field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["passed"] = self.passed
        return data

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL " + "; ".join(self.failures)
        return (
            f"{self.scenario}/{self.profile} seed={self.seed} ran-chaos: "
            f"{status} (safe {self.chaos_deadline_safe:.3f}, "
            f"violations {self.chaos_violations}, "
            f"outages {self.bs_outages}, brownouts {self.bs_brownouts}, "
            f"rejected uplinks {self.uplinks_rejected}, "
            f"detach/reattach {self.detaches}/{self.reattaches}, "
            f"replay {'identical' if self.replay_identical else 'DIVERGED'})"
        )


def _chaos_event_tuples(report) -> List[tuple]:
    return [
        (e.time_s, e.seq, e.kind, e.target, e.detail)
        for e in report.events
    ]


def run_ran_differential(
    scenario: str = "pair",
    profile: Union[str, ChaosProfile] = "ran-outage",
    seed: int = 0,
    n_ues: int = 2,
    periods: int = 4,
    n_devices: int = 12,
    duration_s: float = 900.0,
) -> RanDifferentialCase:
    """One RAN-chaos case: audited baseline vs chaos vs replayed chaos.

    Unlike :func:`run_differential`, the chaos leg here degrades the
    *cellular* side — outages, brown-outs, paging storms — so raw
    deadline safety over every beat is unachievable by construction.
    What is gated instead is the degraded-RAN contract: no silent
    heartbeat loss (auditor violations cover it), outage-aware deadline
    safety of the healthy population at 1.0, and deterministic replay
    from the (scenario, profile, seed) triple.
    """
    resolved = resolve_profile(profile)
    assert resolved is not None
    baseline = _run_scenario(
        scenario, seed, None, None, n_ues, periods, n_devices, duration_s
    )
    chaotic = _run_scenario(
        scenario, seed, resolved, seed, n_ues, periods, n_devices, duration_s
    )
    replay = _run_scenario(
        scenario, seed, resolved, seed, n_ues, periods, n_devices, duration_s
    )
    replay_identical = (
        chaotic.metrics.to_comparable_dict() == replay.metrics.to_comparable_dict()
        and _chaos_event_tuples(chaotic.chaos_report)
        == _chaos_event_tuples(replay.chaos_report)
    )
    baseline_violations = (
        len(baseline.audit_report.violations) if baseline.audit_report else 0
    )
    chaos_violations = (
        len(chaotic.audit_report.violations) if chaotic.audit_report else 0
    )
    faults = chaotic.metrics.faults
    case = RanDifferentialCase(
        scenario=scenario,
        profile=resolved.name,
        seed=seed,
        baseline_violations=baseline_violations,
        chaos_violations=chaos_violations,
        baseline_deadline_safe=baseline.deadline_safe_fraction(),
        chaos_deadline_safe=chaotic.deadline_safe_fraction(),
        chaos_events=(
            chaotic.chaos_report.total_events if chaotic.chaos_report else 0
        ),
        bs_outages=faults.bs_outages if faults else 0,
        bs_brownouts=faults.bs_brownouts if faults else 0,
        rrc_rejections=faults.rrc_rejections if faults else 0,
        pages_injected=faults.pages_injected if faults else 0,
        uplinks_rejected=faults.uplinks_rejected if faults else 0,
        detaches=faults.detaches if faults else 0,
        reattaches=faults.reattaches if faults else 0,
        beats_dropped=(
            faults.beats_dropped_stale
            + faults.beats_dropped_overflow
            + faults.beats_dropped_retries
            if faults
            else 0
        ),
        beats_buffered_end=faults.beats_buffered_end if faults else 0,
        replay_identical=replay_identical,
    )
    if baseline_violations:
        case.failures.append(
            f"baseline audit: {baseline.audit_report.first_violation}"
        )
    if chaos_violations:
        case.failures.append(
            f"ran-chaos audit: {chaotic.audit_report.first_violation}"
        )
    if case.chaos_deadline_safe < 1.0:
        case.failures.append(
            f"outage-aware deadline safety {case.chaos_deadline_safe:.4f} < 1.0"
        )
    if case.chaos_deadline_safe < case.baseline_deadline_safe:
        case.failures.append(
            f"deadline safety dropped {case.baseline_deadline_safe:.4f} → "
            f"{case.chaos_deadline_safe:.4f}"
        )
    if not replay_identical:
        case.failures.append(
            "replay diverged: same (scenario, profile, seed) produced "
            "different metrics or chaos events"
        )
    return case


def run_differential_suite(
    profiles: Optional[Sequence[Union[str, ChaosProfile]]] = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    scenarios: Sequence[str] = ("pair",),
    n_ues: int = 2,
    periods: int = 4,
    n_devices: int = 12,
    duration_s: float = 900.0,
) -> DifferentialSuite:
    """Every (scenario × profile × seed) differential case.

    Defaults to all built-in profiles over the acceptance seed set on the
    fast pair scenario; pass ``scenarios=("pair", "crowd")`` for the soak.
    """
    if profiles is None:
        profiles = list(CHAOS_PROFILES)
    suite = DifferentialSuite()
    for scenario in scenarios:
        for profile in profiles:
            for seed in seeds:
                suite.cases.append(
                    run_differential(
                        scenario=scenario,
                        profile=profile,
                        seed=seed,
                        n_ues=n_ues,
                        periods=periods,
                        n_devices=n_devices,
                        duration_s=duration_s,
                    )
                )
    return suite
