"""Hand-scheduled fault injection for experiments.

The paper's reliability argument (Sec. III-A) is that the feedback
mechanism survives "the relay has ran out of its battery or lost
connection to cellular network" and pairs "exceed[ing] the maximum
communication distance". This module packages those failure modes as
schedulable injections so any experiment — not just the internal test
suite — can assert delivery safety under faults:

    plan = FaultPlan(sim)
    plan.kill_device_at(200.0, relay_phone)
    plan.break_links_at(450.0, medium, "relay-0")
    plan.drop_acks_between(800.0, 1100.0, ue_agent)
    ... run ...
    plan.report()

For *stochastic* fault processes (Poisson churn, Markov link flap, ack
bursts) layered on a whole scenario, see :mod:`repro.faults.chaos`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.core.feedback import FeedbackTracker
from repro.core.ue import UEAgent
from repro.d2d.base import D2DMedium
from repro.device import Smartphone
from repro.sim.engine import Simulator


@dataclasses.dataclass
class InjectedFault:
    """One scheduled fault and whether it has fired."""

    kind: str
    at_s: float
    target: str
    fired: bool = False
    detail: str = ""


class AckLossWindow:
    """One open ack-suppression window on a tracker (see AckLossSwitch)."""

    __slots__ = ("dropped_seqs", "closed")

    def __init__(self) -> None:
        self.dropped_seqs: List[int] = []
        self.closed = False

    @property
    def dropped(self) -> int:
        return len(self.dropped_seqs)


class AckLossSwitch:
    """Composable ack suppression over one :class:`FeedbackTracker`.

    Installs a single interceptor in front of ``tracker.ack`` (idempotent —
    one switch per tracker, shared by every client). Clients open and close
    *windows*; while at least one window is open, every ack batch is
    discarded and credited to each open window. The original ``ack`` is
    only restored when the last window closes, so overlapping windows from
    independent sources (two ``FaultPlan.drop_acks_between`` calls, or a
    plan window and a chaos ack-burst) compose instead of the earlier
    close silently disarming the later window.
    """

    def __init__(self, tracker: FeedbackTracker) -> None:
        self._tracker = tracker
        self._original_ack = tracker.ack
        self._windows: List[AckLossWindow] = []
        self.total_dropped = 0
        # a stable bound-method reference: attribute access creates a new
        # bound method each time, so identity checks need this one object
        self._interceptor = self._intercept
        tracker.ack = self._interceptor  # type: ignore[method-assign]

    @classmethod
    def install(cls, tracker: FeedbackTracker) -> "AckLossSwitch":
        """The switch for ``tracker``, creating and installing it once."""
        switch = getattr(tracker, "_ack_loss_switch", None)
        if switch is None:
            switch = cls(tracker)
            tracker._ack_loss_switch = switch  # type: ignore[attr-defined]
        return switch

    # ------------------------------------------------------------------
    @property
    def suppressing(self) -> bool:
        return bool(self._windows)

    def open_window(self) -> AckLossWindow:
        window = AckLossWindow()
        self._windows.append(window)
        if self._tracker.ack is not self._interceptor:
            # someone re-wrapped ack after we uninstalled; re-capture it
            self._original_ack = self._tracker.ack
            self._tracker.ack = self._interceptor  # type: ignore[method-assign]
        return window

    def close_window(self, window: AckLossWindow) -> None:
        if window.closed:
            return
        window.closed = True
        if window in self._windows:
            self._windows.remove(window)
        if not self._windows and self._tracker.ack is self._interceptor:
            self._tracker.ack = self._original_ack  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def _intercept(self, beat_seqs) -> int:
        seqs = list(beat_seqs)
        if not self._windows:
            return self._original_ack(seqs)
        self.total_dropped += len(seqs)
        for window in self._windows:
            window.dropped_seqs.extend(seqs)
        return 0


class FaultPlan:
    """A schedule of failures to inject into one simulation."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.faults: List[InjectedFault] = []

    # ------------------------------------------------------------------
    def kill_device_at(self, at_s: float, device: Smartphone) -> InjectedFault:
        """Hard power-off (battery death / crash) at ``at_s``."""
        fault = self._register("device-death", at_s, device.device_id)

        def fire() -> None:
            fault.fired = True
            fault.detail = "powered off" if device.alive else "already dead"
            device.power_off()

        self.sim.schedule_at(at_s, fire, name="fault_kill")
        return fault

    def revive_device_at(self, at_s: float, device: Smartphone) -> InjectedFault:
        """Power a dead phone back on at ``at_s`` (battery swap / reboot)."""
        fault = self._register("device-revival", at_s, device.device_id)

        def fire() -> None:
            fault.fired = True
            fault.detail = "already alive" if device.alive else "powered on"
            device.power_on()

        self.sim.schedule_at(at_s, fire, name="fault_revive")
        return fault

    def drain_battery_at(
        self, at_s: float, device: Smartphone, to_level: float = 0.0
    ) -> InjectedFault:
        """Set the battery to ``to_level`` at ``at_s`` (depletion path)."""
        if device.battery is None:
            raise ValueError(f"{device.device_id} has no battery to drain")
        fault = self._register("battery-drain", at_s, device.device_id)

        def fire() -> None:
            fault.fired = True
            battery = device.battery
            assert battery is not None
            target_mah = battery.capacity_mah * to_level
            if battery.remaining_mah > target_mah:
                battery.drain_uah((battery.remaining_mah - target_mah) * 1000.0)
            fault.detail = f"level={battery.level:.2f}"

        self.sim.schedule_at(at_s, fire, name="fault_drain")
        return fault

    def break_links_at(
        self, at_s: float, medium: D2DMedium, device_id: str
    ) -> InjectedFault:
        """Sever every D2D connection of ``device_id`` (range loss)."""
        fault = self._register("link-break", at_s, device_id)

        def fire() -> None:
            fault.fired = True
            connections = medium.connections_of(device_id)
            fault.detail = f"broke {len(connections)} link(s)"
            for connection in connections:
                connection.close("injected link break")

        self.sim.schedule_at(at_s, fire, name="fault_break")
        return fault

    def drop_acks_between(
        self, start_s: float, end_s: float, agent: UEAgent
    ) -> InjectedFault:
        """Discard every delivery ack the UE receives in a window.

        Models ack-frame loss: the relay believes it confirmed, the UE
        never hears it — the fallback timers must cover the gap.
        Windows are ref-counted through :class:`AckLossSwitch`, so
        overlapping windows on the same UE compose correctly.
        """
        if end_s <= start_s:
            raise ValueError("window must have positive length")
        fault = self._register("ack-loss", start_s, agent.device.device_id)
        switch = AckLossSwitch.install(agent.feedback)
        window: Dict[str, Optional[AckLossWindow]] = {"open": None}

        def arm() -> None:
            fault.fired = True
            window["open"] = switch.open_window()

        def disarm() -> None:
            open_window = window["open"]
            if open_window is None:
                return
            fault.detail = f"dropped {open_window.dropped} ack(s)"
            switch.close_window(open_window)
            window["open"] = None

        self.sim.schedule_at(start_s, arm, name="fault_ackloss_on")
        self.sim.schedule_at(end_s, disarm, name="fault_ackloss_off")
        return fault

    def custom_at(
        self, at_s: float, name: str, action: Callable[[], None]
    ) -> InjectedFault:
        """Escape hatch for bespoke failures."""
        fault = self._register(name, at_s, "custom")

        def fire() -> None:
            fault.fired = True
            action()

        self.sim.schedule_at(at_s, fire, name=f"fault_{name}")
        return fault

    # ------------------------------------------------------------------
    def _register(self, kind: str, at_s: float, target: str) -> InjectedFault:
        fault = InjectedFault(kind=kind, at_s=at_s, target=target)
        self.faults.append(fault)
        return fault

    @property
    def fired_count(self) -> int:
        return sum(1 for fault in self.faults if fault.fired)

    def report(self) -> List[str]:
        """One line per injected fault (for experiment logs)."""
        return [
            f"[{fault.at_s:8.1f}s] {fault.kind} on {fault.target}: "
            f"{'FIRED ' + fault.detail if fault.fired else 'pending'}"
            for fault in self.faults
        ]
