"""Fault injection, chaos processes and delivery-safety auditing.

Three layers, from hand-scheduled to fully stochastic:

- :mod:`repro.faults.plan` — :class:`FaultPlan`: one-shot scheduled
  faults (kill/revive a device, drain a battery, break links, drop acks)
  for targeted experiments;
- :mod:`repro.faults.chaos` — :class:`ChaosEngine` +
  :class:`ChaosProfile`: seeded stochastic fault processes (relay churn,
  link flap, ack bursts, storms, battery ramps, clock skew) layered on
  whole scenarios, replayable from ``(scenario, profile, seed)``;
- :mod:`repro.faults.auditor` — :class:`InvariantAuditor`: runtime
  checks of the paper's safety claims while the sim runs;
- :mod:`repro.faults.harness` — the differential gate asserting chaos
  never costs deadline-safe delivery.
"""

from repro.faults.auditor import (
    AuditReport,
    AuditViolation,
    InvariantAuditor,
    TraceEntry,
)
from repro.faults.chaos import (
    CHAOS_PROFILES,
    ChaosEngine,
    ChaosEvent,
    ChaosProfile,
    ChaosReport,
    resolve_profile,
)
from repro.faults.harness import (
    ChannelDifferentialCase,
    DifferentialCase,
    DifferentialSuite,
    RanDifferentialCase,
    run_channel_differential,
    run_differential,
    run_differential_suite,
    run_ran_differential,
)
from repro.faults.plan import (
    AckLossSwitch,
    AckLossWindow,
    FaultPlan,
    InjectedFault,
)

__all__ = [
    "AckLossSwitch",
    "AckLossWindow",
    "AuditReport",
    "AuditViolation",
    "CHAOS_PROFILES",
    "ChannelDifferentialCase",
    "ChaosEngine",
    "ChaosEvent",
    "ChaosProfile",
    "ChaosReport",
    "DifferentialCase",
    "DifferentialSuite",
    "FaultPlan",
    "InjectedFault",
    "InvariantAuditor",
    "RanDifferentialCase",
    "TraceEntry",
    "resolve_profile",
    "run_channel_differential",
    "run_differential",
    "run_differential_suite",
    "run_ran_differential",
]
