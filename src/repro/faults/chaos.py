"""Seeded stochastic fault processes ("chaos") for whole scenarios.

Where :class:`repro.faults.plan.FaultPlan` injects hand-scheduled one-shot
faults, the chaos engine layers continuous *fault processes* over a running
simulation — the failure statistics related deployments actually observe
(battery-limited relays churn throughout a session; shadowing makes D2D
links flap rather than break cleanly):

- **relay churn** — Poisson death/revival per relay device;
- **link flap** — an on/off Markov process per live D2D pair, enforced
  through :attr:`repro.d2d.base.D2DMedium.link_gate`;
- **ack loss** — Poisson-started suppression bursts with exponential
  lengths, composed through :class:`repro.faults.plan.AckLossSwitch`;
- **heartbeat storms** — every live device submits extra periodic
  messages through its Message Monitor (a push-notification burst);
- **battery-drain ramps** — relays get finite batteries bled at a
  constant background rate until depletion powers them off;
- **clock skew** — per-UE phase shifts on every heartbeat generator;
- **base-station outages** — the serving cell goes ``DOWN`` for
  exponential dwell times, rejecting every uplink until restore;
- **brown-outs** — the cell degrades to reduced signaling capacity,
  elevated RRC attach latency and (optionally) injected RRC
  connection rejects;
- **paging storms** — bursts of pages flood the slotted paging
  channel, driving occupancy-based page loss and retry queues.

All randomness comes from private named streams derived from
``(chaos seed, profile name, process)`` via :func:`repro.sim.rng.make_rng`,
so (1) a chaos run is exactly replayable from ``(scenario, profile, seed)``
and (2) enabling chaos never perturbs the simulation's own streams.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.sim.rng import make_rng
from repro.workload.messages import MessageKind, PeriodicMessage

#: App name stamped on storm-injected messages. Deliberately distinct from
#: any registered app: a storm beat must never masquerade as a relay's
#: primary heartbeat (which would open a new collection period).
STORM_APP = "chaos-storm"

#: Storm beats are delay-tolerant but tighter than a heartbeat period, so
#: they exercise the scheduler's expiration bound as well as its capacity.
STORM_EXPIRY_S = 120.0
STORM_PERIOD_S = 600.0
STORM_BYTES = 54


@dataclasses.dataclass(frozen=True)
class ChaosProfile:
    """Declarative description of one chaos mix.

    All rates are per simulated second; a rate of ``0`` disables that
    process. Death/flap/burst lengths are exponential; clock skew is a
    one-shot uniform draw in ``±clock_skew_max_s`` per UE.
    """

    name: str
    description: str = ""
    #: Poisson relay power-off rate, and power-on rate while dead.
    relay_death_rate_hz: float = 0.0
    relay_revival_rate_hz: float = 0.0
    #: Markov link flap: per-tick hazard of a live pair going down / a
    #: down pair recovering.
    link_down_rate_hz: float = 0.0
    link_up_rate_hz: float = 0.0
    #: Ack-suppression bursts per UE: start rate and mean burst length.
    ack_burst_rate_hz: float = 0.0
    ack_burst_mean_s: float = 0.0
    #: Heartbeat-burst storms: global start rate; extra beats per device.
    storm_rate_hz: float = 0.0
    storm_beats_per_device: int = 0
    #: Constant background battery drain applied to relays (µAh/s) on a
    #: battery of ``relay_battery_mah`` (small by default so ramps matter
    #: within a session).
    relay_drain_uah_per_s: float = 0.0
    relay_battery_mah: float = 5.0
    #: One-shot heartbeat phase skew per UE, uniform in ±max.
    clock_skew_max_s: float = 0.0
    #: Cadence of the discrete processes (flap + drain ramps).
    tick_s: float = 5.0
    #: Base-station hard outages: Poisson start rate, exponential mean
    #: dwell in the DOWN state.
    bs_outage_rate_hz: float = 0.0
    bs_outage_mean_s: float = 0.0
    #: Base-station brown-outs: Poisson start rate, exponential mean
    #: dwell, remaining capacity fraction, extra RRC attach latency.
    bs_brownout_rate_hz: float = 0.0
    bs_brownout_mean_s: float = 0.0
    brownout_capacity_factor: float = 0.5
    brownout_extra_setup_s: float = 0.0
    #: Probability a browned-out cell rejects an RRC connection request.
    rrc_reject_prob: float = 0.0
    #: Paging storms: Poisson burst rate, pages injected per burst.
    page_storm_rate_hz: float = 0.0
    page_storm_pages: int = 0
    #: Declared reattach-liveness bound: after a cell restore, every
    #: detached sender must reattach within this many seconds (0 = no
    #: bound declared, auditor skips the check).
    reattach_bound_s: float = 0.0

    def __post_init__(self) -> None:
        for field in (
            "relay_death_rate_hz", "relay_revival_rate_hz",
            "link_down_rate_hz", "link_up_rate_hz", "ack_burst_rate_hz",
            "ack_burst_mean_s", "storm_rate_hz", "relay_drain_uah_per_s",
            "clock_skew_max_s", "bs_outage_rate_hz", "bs_outage_mean_s",
            "bs_brownout_rate_hz", "bs_brownout_mean_s",
            "brownout_extra_setup_s", "page_storm_rate_hz",
            "reattach_bound_s",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")
        if self.storm_beats_per_device < 0:
            raise ValueError("storm_beats_per_device must be >= 0")
        if self.page_storm_pages < 0:
            raise ValueError("page_storm_pages must be >= 0")
        if not 0.0 < self.brownout_capacity_factor <= 1.0:
            raise ValueError("brownout_capacity_factor must be in (0, 1]")
        if not 0.0 <= self.rrc_reject_prob <= 1.0:
            raise ValueError("rrc_reject_prob must be in [0, 1]")
        if self.relay_battery_mah <= 0:
            raise ValueError("relay_battery_mah must be positive")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


#: The built-in chaos mixes. Rates are tuned for session lengths of
#: ~1000-2000 s (3-7 heartbeat periods), the scale every scenario runs at.
CHAOS_PROFILES: Dict[str, ChaosProfile] = {
    profile.name: profile
    for profile in (
        ChaosProfile(
            name="mild",
            description="occasional relay loss and lost ack frames",
            relay_death_rate_hz=1 / 1800.0,
            relay_revival_rate_hz=1 / 240.0,
            ack_burst_rate_hz=1 / 900.0,
            ack_burst_mean_s=30.0,
            clock_skew_max_s=15.0,
        ),
        ChaosProfile(
            name="relay-hostile",
            description="relays churn hard and run on dying batteries",
            relay_death_rate_hz=1 / 450.0,
            relay_revival_rate_hz=1 / 180.0,
            relay_drain_uah_per_s=4.0,
            relay_battery_mah=3.0,
            storm_rate_hz=1 / 900.0,
            storm_beats_per_device=2,
        ),
        ChaosProfile(
            name="link-hostile",
            description="D2D links flap and acks vanish in long bursts",
            link_down_rate_hz=1 / 240.0,
            link_up_rate_hz=1 / 90.0,
            ack_burst_rate_hz=1 / 400.0,
            ack_burst_mean_s=45.0,
            clock_skew_max_s=30.0,
        ),
        ChaosProfile(
            name="adversarial",
            description="every process at once, aggressively",
            relay_death_rate_hz=1 / 500.0,
            relay_revival_rate_hz=1 / 150.0,
            link_down_rate_hz=1 / 300.0,
            link_up_rate_hz=1 / 120.0,
            ack_burst_rate_hz=1 / 450.0,
            ack_burst_mean_s=60.0,
            storm_rate_hz=1 / 600.0,
            storm_beats_per_device=3,
            relay_drain_uah_per_s=2.0,
            relay_battery_mah=4.0,
            clock_skew_max_s=60.0,
        ),
        ChaosProfile(
            name="ran-outage",
            description="the serving cell dies and restores; the cellular "
                        "fallback path itself vanishes for whole dwells",
            bs_outage_rate_hz=1 / 500.0,
            bs_outage_mean_s=120.0,
            reattach_bound_s=90.0,
        ),
        ChaosProfile(
            name="paging-storm",
            description="page bursts flood the control channel while the "
                        "cell browns out under the load",
            page_storm_rate_hz=1 / 300.0,
            page_storm_pages=40,
            bs_brownout_rate_hz=1 / 600.0,
            bs_brownout_mean_s=90.0,
            brownout_capacity_factor=0.5,
            brownout_extra_setup_s=1.0,
            rrc_reject_prob=0.15,
            reattach_bound_s=90.0,
        ),
        ChaosProfile(
            name="degraded-ran",
            description="outages, brown-outs, RRC rejects and page storms "
                        "together — the hostile-RAN composition",
            bs_outage_rate_hz=1 / 900.0,
            bs_outage_mean_s=90.0,
            bs_brownout_rate_hz=1 / 450.0,
            bs_brownout_mean_s=120.0,
            brownout_capacity_factor=0.25,
            brownout_extra_setup_s=2.0,
            rrc_reject_prob=0.25,
            page_storm_rate_hz=1 / 600.0,
            page_storm_pages=25,
            reattach_bound_s=120.0,
        ),
    )
}


def resolve_profile(chaos: Union[None, str, ChaosProfile]) -> Optional[ChaosProfile]:
    """``None`` | profile name | profile instance → profile (or ``None``)."""
    if chaos is None or isinstance(chaos, ChaosProfile):
        return chaos
    try:
        return CHAOS_PROFILES[chaos]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {chaos!r}; "
            f"known: {sorted(CHAOS_PROFILES)}"
        ) from None


@dataclasses.dataclass(frozen=True)
class ChaosEvent:
    """One fault-process firing, for replay comparison and debugging.

    ``seq`` is an explicit per-engine sequence number: fault processes
    that revive agents can fire at timestamps identical to scheduler
    deadlines (and to each other), so sorting events by ``time_s`` alone
    is ambiguous — the same tie-order trap as the event kernel's tuple
    heap. Always order by :attr:`sort_key`.
    """

    time_s: float
    kind: str
    target: str
    detail: str = ""
    seq: int = 0

    @property
    def sort_key(self) -> Tuple[float, int]:
        """Total order over a run's events, stable across identical times."""
        return (self.time_s, self.seq)


@dataclasses.dataclass
class ChaosReport:
    """What one chaos run actually did."""

    profile: str
    seed: int
    events: List[ChaosEvent] = dataclasses.field(default_factory=list)
    relay_deaths: int = 0
    relay_revivals: int = 0
    link_downs: int = 0
    link_ups: int = 0
    ack_bursts: int = 0
    acks_dropped: int = 0
    storms: int = 0
    storm_beats: int = 0
    batteries_depleted: int = 0
    ues_skewed: int = 0
    bs_outages: int = 0
    bs_restores: int = 0
    bs_brownouts: int = 0
    rrc_rejections: int = 0
    page_storms: int = 0
    pages_injected: int = 0

    @property
    def total_events(self) -> int:
        return len(self.events)

    def ordered_events(self) -> List[ChaosEvent]:
        """Events in their total order (time, then injection sequence)."""
        return sorted(self.events, key=lambda e: e.sort_key)

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["total_events"] = self.total_events
        return data

    def summary(self) -> str:
        text = (
            f"chaos[{self.profile} seed={self.seed}]: "
            f"{self.total_events} events — "
            f"deaths {self.relay_deaths} revivals {self.relay_revivals}, "
            f"link downs {self.link_downs} ups {self.link_ups}, "
            f"ack bursts {self.ack_bursts} ({self.acks_dropped} dropped), "
            f"storms {self.storms} ({self.storm_beats} beats), "
            f"batteries {self.batteries_depleted}, "
            f"skewed UEs {self.ues_skewed}"
        )
        ran_active = (
            self.bs_outages or self.bs_brownouts
            or self.rrc_rejections or self.page_storms
        )
        if ran_active:
            text += (
                f", bs outages {self.bs_outages} "
                f"(restores {self.bs_restores}), "
                f"brownouts {self.bs_brownouts}, "
                f"rrc rejects {self.rrc_rejections}, "
                f"page storms {self.page_storms} "
                f"({self.pages_injected} pages)"
            )
        return text


class ChaosEngine:
    """Drives one :class:`ChaosProfile`'s fault processes over a scenario.

    Usage::

        engine = ChaosEngine(profile, seed=chaos_seed)
        engine.attach(sim, devices, medium=medium, framework=framework)
        ... run the simulation ...
        report = engine.report

    ``attach`` must be called after the framework (or baseline) is wired —
    it inspects the live agents — and before the clock starts.
    """

    def __init__(self, profile: Union[str, ChaosProfile], seed: int = 0) -> None:
        resolved = resolve_profile(profile)
        if resolved is None:
            raise ValueError("ChaosEngine needs a profile")
        self.profile = resolved
        self.seed = int(seed)
        self.report = ChaosReport(profile=resolved.name, seed=self.seed)
        self._attached = False
        self.sim = None
        self._medium = None
        self._framework = None
        self._relay_devices: List = []
        self._down_pairs: Dict[Tuple[str, str], bool] = {}
        self._ramp_batteries: List = []
        self._storm_targets: List[Tuple[str, Callable[[], bool], Callable[[PeriodicMessage], None]]] = []
        self._next_seq = 0

    # ------------------------------------------------------------------
    def _rng(self, stream: str) -> random.Random:
        return make_rng(self.seed, f"chaos:{self.profile.name}:{stream}")

    def _record(self, kind: str, target: str, detail: str = "") -> None:
        self._next_seq += 1
        self.report.events.append(
            ChaosEvent(
                time_s=self.sim.now,
                kind=kind,
                target=target,
                detail=detail,
                seq=self._next_seq,
            )
        )

    # ------------------------------------------------------------------
    def attach(
        self,
        sim,
        devices: Dict[str, object],
        medium=None,
        framework=None,
        original=None,
        basestation=None,
        paging=None,
    ) -> "ChaosEngine":
        """Wire every enabled fault process into a built scenario."""
        if self._attached:
            raise RuntimeError("ChaosEngine.attach called twice")
        self._attached = True
        self.sim = sim
        self._medium = medium
        self._framework = framework
        profile = self.profile

        relay_agents: Dict[str, object] = {}
        if framework is not None:
            relay_agents = dict(framework.relays)
            for device_id, agent in framework.ues.items():
                device = devices[device_id]
                self._storm_targets.append(
                    (device_id, lambda d=device: d.alive, agent.monitor.submit)
                )
            for device_id, agent in framework.relays.items():
                device = devices[device_id]
                self._storm_targets.append(
                    (device_id, lambda d=device: d.alive, agent.monitor.submit)
                )
            for device_id, sender in framework.standalones.items():
                device = devices[device_id]
                self._storm_targets.append(
                    (device_id, lambda d=device: d.alive, sender.monitor.submit)
                )
        if original is not None:
            for device_id, monitor in original.monitors.items():
                device = devices[device_id]
                self._storm_targets.append(
                    (device_id, lambda d=device: d.alive, monitor.submit)
                )

        self._relay_devices = [
            device for device in devices.values()
            if getattr(device.role, "value", None) == "relay"
        ]

        # relay churn -------------------------------------------------
        if profile.relay_death_rate_hz > 0:
            for device in self._relay_devices:
                agent = relay_agents.get(device.device_id)
                self._start_relay_churn(device, agent)

        # link flap ---------------------------------------------------
        if medium is not None and profile.link_down_rate_hz > 0:
            if medium.link_gate is not None:
                raise RuntimeError("D2D medium already has a link gate")
            medium.link_gate = self._link_allowed
            self._flap_rng = self._rng("link-flap")

        # ack bursts --------------------------------------------------
        if framework is not None and profile.ack_burst_rate_hz > 0:
            from repro.faults.plan import AckLossSwitch

            for device_id, agent in framework.ues.items():
                switch = AckLossSwitch.install(agent.feedback)
                self._start_ack_bursts(device_id, switch)

        # storms ------------------------------------------------------
        if profile.storm_rate_hz > 0 and profile.storm_beats_per_device > 0:
            self._storm_rng = self._rng("storm")
            self.sim.schedule(
                self._storm_rng.expovariate(profile.storm_rate_hz),
                self._fire_storm,
                name="chaos_storm",
            )

        # battery ramps ----------------------------------------------
        if profile.relay_drain_uah_per_s > 0 and self._relay_devices:
            from repro.energy.battery import Battery

            for device in self._relay_devices:
                battery = device.battery
                if battery is None:
                    battery = Battery(capacity_mah=profile.relay_battery_mah)
                    battery.on_depleted = device._on_battery_depleted
                    device.battery = battery
                    device.energy.battery = battery
                self._watch_depletion(device, battery)
                self._ramp_batteries.append((device, battery))

        # clock skew --------------------------------------------------
        if profile.clock_skew_max_s > 0:
            skew_rng = self._rng("clock-skew")
            monitors = []
            if framework is not None:
                monitors = [
                    (device_id, agent.monitor)
                    for device_id, agent in sorted(framework.ues.items())
                ]
            elif original is not None:
                monitors = sorted(original.monitors.items())
            for device_id, monitor in monitors:
                skew = skew_rng.uniform(
                    -profile.clock_skew_max_s, profile.clock_skew_max_s
                )
                for generator in monitor.generators.values():
                    generator.shift_phase(skew)
                self.report.ues_skewed += 1
                self._record("clock-skew", device_id, f"{skew:+.1f}s")

        # base-station outages ---------------------------------------
        if basestation is not None and profile.bs_outage_rate_hz > 0:
            self._start_bs_outages(basestation)

        # base-station brown-outs ------------------------------------
        if basestation is not None and profile.bs_brownout_rate_hz > 0:
            self._start_bs_brownouts(basestation)

        # injected RRC connection rejects (only while browned out) ---
        if basestation is not None and profile.rrc_reject_prob > 0:
            self._install_rrc_reject_gate(basestation)

        # paging storms ----------------------------------------------
        if (
            paging is not None
            and profile.page_storm_rate_hz > 0
            and profile.page_storm_pages > 0
        ):
            self._paging = paging
            self._page_targets = sorted(devices)
            self._page_rng = self._rng("page-storm")
            self.sim.schedule(
                self._page_rng.expovariate(profile.page_storm_rate_hz),
                self._fire_page_storm,
                name="chaos_page_storm",
            )

        # discrete tick (flap + ramps) -------------------------------
        needs_tick = (
            (medium is not None and profile.link_down_rate_hz > 0)
            or self._ramp_batteries
        )
        if needs_tick:
            self.sim.every(profile.tick_s, self._tick, name="chaos_tick")
        return self

    # ------------------------------------------------------------------
    # relay churn
    # ------------------------------------------------------------------
    def _start_relay_churn(self, device, agent) -> None:
        profile = self.profile
        rng = self._rng(f"relay-churn:{device.device_id}")

        def kill() -> None:
            if device.alive:
                device.power_off()
                self.report.relay_deaths += 1
                self._record("relay-death", device.device_id)
            if profile.relay_revival_rate_hz > 0:
                self.sim.schedule(
                    rng.expovariate(profile.relay_revival_rate_hz),
                    revive,
                    name="chaos_relay_revive",
                )

        def revive() -> None:
            if not device.alive:
                device.power_on()
                if agent is not None and hasattr(agent, "revive"):
                    agent.revive()
                self.report.relay_revivals += 1
                self._record("relay-revival", device.device_id)
            self.sim.schedule(
                rng.expovariate(profile.relay_death_rate_hz),
                kill,
                name="chaos_relay_kill",
            )

        self.sim.schedule(
            rng.expovariate(profile.relay_death_rate_hz),
            kill,
            name="chaos_relay_kill",
        )

    # ------------------------------------------------------------------
    # link flap (Markov on observed pairs, enforced via the medium gate)
    # ------------------------------------------------------------------
    def _pair_key(self, a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _link_allowed(self, a: str, b: str) -> bool:
        return self._pair_key(a, b) not in self._down_pairs

    def _tick(self) -> None:
        profile = self.profile
        # link flap: live pairs may go down; down pairs may recover
        if self._medium is not None and profile.link_down_rate_hz > 0:
            p_down = 1.0 - pow(2.718281828459045, -profile.link_down_rate_hz * profile.tick_s)
            p_up = 1.0 - pow(2.718281828459045, -profile.link_up_rate_hz * profile.tick_s)
            for connection in list(self._medium.live_connections()):
                key = self._pair_key(
                    connection.initiator.device_id, connection.responder.device_id
                )
                if key in self._down_pairs:
                    continue
                if self._flap_rng.random() < p_down:
                    self._down_pairs[key] = True
                    self.report.link_downs += 1
                    self._record("link-down", f"{key[0]}~{key[1]}")
                    connection.close("chaos link down")
            for key in [k for k, down in list(self._down_pairs.items()) if down]:
                if self._flap_rng.random() < p_up:
                    del self._down_pairs[key]
                    self.report.link_ups += 1
                    self._record("link-up", f"{key[0]}~{key[1]}")
        # battery ramps: the depletion itself is recorded by the chained
        # on_depleted hook (see _watch_depletion) because the organic
        # energy model drains the same battery between ticks and may be
        # the charge that crosses zero.
        if self._ramp_batteries:
            drain = self.profile.relay_drain_uah_per_s * self.profile.tick_s
            for device, battery in self._ramp_batteries:
                if not device.alive or battery.is_depleted:
                    continue
                battery.drain_uah(drain)

    def _watch_depletion(self, device, battery) -> None:
        """Record depletion whichever charge crosses zero (ramp or organic)."""
        inner = battery.on_depleted

        def on_depleted() -> None:
            self.report.batteries_depleted += 1
            self._record(
                "battery-depleted", device.device_id,
                f"after {battery.total_drained_mah:.2f} mAh",
            )
            if inner is not None:
                inner()

        battery.on_depleted = on_depleted

    # ------------------------------------------------------------------
    # ack bursts
    # ------------------------------------------------------------------
    def _start_ack_bursts(self, device_id: str, switch) -> None:
        profile = self.profile
        rng = self._rng(f"ack-burst:{device_id}")

        def start_burst() -> None:
            length = rng.expovariate(1.0 / max(profile.ack_burst_mean_s, 1e-9))
            window = switch.open_window()
            self.report.ack_bursts += 1
            self._record("ack-burst", device_id, f"{length:.1f}s")

            def end_burst() -> None:
                self.report.acks_dropped += window.dropped
                switch.close_window(window)

            self.sim.schedule(length, end_burst, name="chaos_ack_burst_end")
            self.sim.schedule(
                rng.expovariate(profile.ack_burst_rate_hz),
                start_burst,
                name="chaos_ack_burst",
            )

        self.sim.schedule(
            rng.expovariate(profile.ack_burst_rate_hz),
            start_burst,
            name="chaos_ack_burst",
        )

    # ------------------------------------------------------------------
    # storms
    # ------------------------------------------------------------------
    def _fire_storm(self) -> None:
        profile = self.profile
        self.report.storms += 1
        self._record(
            "storm", "all-devices", f"{profile.storm_beats_per_device}/device"
        )
        now = self.sim.now
        for device_id, is_alive, submit in self._storm_targets:
            if not is_alive():
                continue
            for _ in range(profile.storm_beats_per_device):
                submit(
                    PeriodicMessage(
                        app=STORM_APP,
                        origin_device=device_id,
                        size_bytes=STORM_BYTES,
                        created_at_s=now,
                        period_s=STORM_PERIOD_S,
                        expiry_s=STORM_EXPIRY_S,
                        kind=MessageKind.DIAGNOSTIC,
                    )
                )
                self.report.storm_beats += 1
        self.sim.schedule(
            self._storm_rng.expovariate(profile.storm_rate_hz),
            self._fire_storm,
            name="chaos_storm",
        )

    # ------------------------------------------------------------------
    # RAN fault processes (outage / brown-out / RRC rejects / paging)
    # ------------------------------------------------------------------
    def _start_bs_outages(self, basestation) -> None:
        from repro.cellular.basestation import RanState

        profile = self.profile
        rng = self._rng("bs-outage")
        mean_s = max(profile.bs_outage_mean_s, 1e-9)

        def down() -> None:
            if basestation.ran_state is not RanState.DOWN:
                basestation.outage()
                self.report.bs_outages += 1
                self._record("bs-outage", "cell")
            self.sim.schedule(
                rng.expovariate(1.0 / mean_s), up, name="chaos_bs_restore"
            )

        def up() -> None:
            if basestation.ran_state is RanState.DOWN:
                basestation.restore()
                self.report.bs_restores += 1
                self._record("bs-restore", "cell")
            self.sim.schedule(
                rng.expovariate(profile.bs_outage_rate_hz),
                down,
                name="chaos_bs_outage",
            )

        self.sim.schedule(
            rng.expovariate(profile.bs_outage_rate_hz),
            down,
            name="chaos_bs_outage",
        )

    def _start_bs_brownouts(self, basestation) -> None:
        from repro.cellular.basestation import RanState

        profile = self.profile
        rng = self._rng("bs-brownout")
        mean_s = max(profile.bs_brownout_mean_s, 1e-9)

        def start() -> None:
            # a hard outage trumps a brown-out; skip this dwell entirely
            if basestation.ran_state is RanState.UP:
                basestation.brownout(
                    capacity_factor=profile.brownout_capacity_factor,
                    extra_setup_s=profile.brownout_extra_setup_s,
                )
                self.report.bs_brownouts += 1
                self._record(
                    "bs-brownout", "cell",
                    f"capacity x{profile.brownout_capacity_factor:g}",
                )
            self.sim.schedule(
                rng.expovariate(1.0 / mean_s), end, name="chaos_bs_brownout_end"
            )

        def end() -> None:
            if basestation.ran_state is RanState.BROWNOUT:
                basestation.restore()
                self._record("bs-brownout-end", "cell")
            self.sim.schedule(
                rng.expovariate(profile.bs_brownout_rate_hz),
                start,
                name="chaos_bs_brownout",
            )

        self.sim.schedule(
            rng.expovariate(profile.bs_brownout_rate_hz),
            start,
            name="chaos_bs_brownout",
        )

    def _install_rrc_reject_gate(self, basestation) -> None:
        if basestation.rrc_reject_gate is not None:
            raise RuntimeError("base station already has an RRC reject gate")
        profile = self.profile
        rng = self._rng("rrc-reject")

        def gate(device_id: str) -> bool:
            hit = rng.random() < profile.rrc_reject_prob
            if hit:
                self.report.rrc_rejections += 1
                self._record("rrc-reject", device_id)
            return hit

        basestation.rrc_reject_gate = gate

    def _fire_page_storm(self) -> None:
        profile = self.profile
        self.report.page_storms += 1
        self._record("page-storm", "cell", f"{profile.page_storm_pages} pages")
        targets = self._page_targets
        for i in range(profile.page_storm_pages):
            self._paging.page(targets[i % len(targets)])
            self.report.pages_injected += 1
        self.sim.schedule(
            self._page_rng.expovariate(profile.page_storm_rate_hz),
            self._fire_page_storm,
            name="chaos_page_storm",
        )
