"""Paging channel and storm-induced paging failure.

The paper motivates signaling-storm relief from the operator's side:
"the massive signaling traffic greatly deteriorates user experience on
cellular network, such as higher rate of paging failure" (Sec. II-B).

Paging shares the control channel with RRC signaling. We model the
paging channel as a slotted resource: each paging attempt needs a free
slot in its window, and slots are consumed both by pages and by the
layer-3 signaling the ledger records. When heartbeat-driven RRC churn
fills the control channel, pages start failing (they are retried once,
then counted as failures) — exactly the downstream QoS effect the D2D
framework relieves.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.cellular.signaling import SignalingLedger
from repro.sim.engine import Simulator


@dataclasses.dataclass(frozen=True)
class PagingConfig:
    """Control-channel dimensioning for paging."""

    #: Control-channel slots per second (shared by pages and L3 messages).
    slots_per_second: float = 8.0
    #: Window over which occupancy is evaluated.
    window_s: float = 5.0
    #: Delay before a failed page is retried.
    retry_after_s: float = 2.0
    #: Retries granted before a blocked page counts as failed. The
    #: default preserves the original retry-once behavior.
    max_retries: int = 1

    def __post_init__(self) -> None:
        if self.slots_per_second <= 0:
            raise ValueError(f"slots_per_second must be positive: {self}")
        if self.window_s <= 0 or self.retry_after_s < 0:
            raise ValueError(f"invalid timing: {self}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self}")

    @property
    def slots_per_window(self) -> float:
        return self.slots_per_second * self.window_s


@dataclasses.dataclass
class PageAttempt:
    """One page through the channel, with its outcome."""

    device_id: str
    requested_at_s: float
    delivered_at_s: Optional[float] = None
    retried: bool = False
    retries: int = 0
    failed_at_s: Optional[float] = None

    @property
    def succeeded(self) -> bool:
        return self.delivered_at_s is not None

    @property
    def resolved(self) -> bool:
        """Whether the page has left the retry queue (either outcome)."""
        return self.delivered_at_s is not None or self.failed_at_s is not None


class PagingChannel:
    """Slotted paging over the shared control channel.

    A page succeeds if the control-channel occupancy (L3 messages recorded
    in the shared ledger plus pages already sent) within the current
    window leaves a free slot. A blocked page joins the retry queue and
    retries after ``retry_after_s``, up to ``max_retries`` times; running
    out of retries is a paging failure.
    """

    def __init__(
        self,
        sim: Simulator,
        ledger: SignalingLedger,
        config: PagingConfig = PagingConfig(),
    ) -> None:
        self.sim = sim
        self.ledger = ledger
        self.config = config
        self.attempts: List[PageAttempt] = []
        self._page_times: List[float] = []
        self.pages_delivered = 0
        self.pages_failed = 0
        self.pages_retried = 0
        self.retry_queue_depth = 0
        self.peak_retry_queue = 0

    # ------------------------------------------------------------------
    def occupancy(self, now: Optional[float] = None) -> int:
        """Control-channel slots used in the trailing window."""
        at = self.sim.now if now is None else now
        start = at - self.config.window_s
        l3 = sum(1 for m in self.ledger.messages() if start <= m.time_s <= at)
        pages = sum(1 for t in self._page_times if start <= t <= at)
        return l3 + pages

    def has_free_slot(self) -> bool:
        return self.occupancy() < self.config.slots_per_window

    def page(
        self,
        device_id: str,
        on_result: Optional[Callable[[PageAttempt], None]] = None,
    ) -> PageAttempt:
        """Attempt to page ``device_id``; retries while blocked."""
        attempt = PageAttempt(device_id=device_id, requested_at_s=self.sim.now)
        self.attempts.append(attempt)
        self._try_deliver(attempt, on_result)
        return attempt

    # ------------------------------------------------------------------
    def _try_deliver(
        self,
        attempt: PageAttempt,
        on_result: Optional[Callable[[PageAttempt], None]],
    ) -> None:
        queued = attempt.retries > 0
        if self.has_free_slot():
            if queued:
                self.retry_queue_depth -= 1
            attempt.delivered_at_s = self.sim.now
            self._page_times.append(self.sim.now)
            self.pages_delivered += 1
            if on_result is not None:
                on_result(attempt)
            return
        if attempt.retries < self.config.max_retries:
            attempt.retried = True
            attempt.retries += 1
            self.pages_retried += 1
            if not queued:
                self.retry_queue_depth += 1
                self.peak_retry_queue = max(
                    self.peak_retry_queue, self.retry_queue_depth
                )
            self.sim.schedule(
                self.config.retry_after_s,
                self._try_deliver,
                attempt,
                on_result,
                name="page_retry",
            )
            return
        if queued:
            self.retry_queue_depth -= 1
        attempt.failed_at_s = self.sim.now
        self.pages_failed += 1
        if on_result is not None:
            on_result(attempt)

    # ------------------------------------------------------------------
    @property
    def failure_rate(self) -> float:
        """Fraction of completed page attempts that failed."""
        done = self.pages_delivered + self.pages_failed
        return 0.0 if done == 0 else self.pages_failed / done

    @property
    def pages_requested(self) -> int:
        return len(self.attempts)

    @property
    def pages_pending(self) -> int:
        """Pages still waiting in the retry queue (unresolved)."""
        return sum(1 for a in self.attempts if not a.resolved)

    def mean_paging_delay_s(self) -> float:
        """Average request→delivery delay over successful pages."""
        delays = [
            a.delivered_at_s - a.requested_at_s
            for a in self.attempts
            if a.succeeded
        ]
        return sum(delays) / len(delays) if delays else 0.0
