"""Cellular modem: the device side of the uplink path.

Couples three substrates per transmission: the RRC machine (signaling +
latency), the energy model (setup / tx / tail charges, Fig. 7's trace
shape), and the base station (delivery). One modem instance per device.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional

from repro.cellular.basestation import BaseStation
from repro.cellular.rrc import RrcProfile, RrcStateMachine, WCDMA_PROFILE
from repro.cellular.signaling import SignalingLedger
from repro.energy.model import EnergyModel, EnergyPhase
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.sim.engine import Simulator


@dataclasses.dataclass
class UplinkResult:
    """Outcome of one uplink transmission.

    Exactly one of ``delivered_at_s`` / ``rejected_at_s`` is ever set. A
    rejection means the serving cell refused the uplink (hard outage,
    brown-out congestion, or an injected RRC connection reject) — the
    payload never reached the network and ``on_delivered`` never fires.
    """

    device_id: str
    payload_bytes: int
    requested_at_s: float
    delivered_at_s: Optional[float] = None
    setup_was_needed: Optional[bool] = None
    payload: Any = None
    rejected_at_s: Optional[float] = None
    reject_cause: Optional[str] = None

    @property
    def delivered(self) -> bool:
        return self.delivered_at_s is not None

    @property
    def rejected(self) -> bool:
        return self.rejected_at_s is not None

    @property
    def latency_s(self) -> Optional[float]:
        if self.delivered_at_s is None:
            return None
        return self.delivered_at_s - self.requested_at_s


class CellularModem:
    """Per-device cellular radio.

    Parameters
    ----------
    sim, device_id:
        Simulator and ledger attribution key.
    energy:
        The device's energy model; ``None`` disables energy accounting
        (useful for pure signaling tests).
    ledger:
        Shared signaling capture.
    basestation:
        Delivery target; ``None`` keeps transmissions local (unit tests).
    profile / rrc_profile:
        Energy and network calibration.
    """

    def __init__(
        self,
        sim: Simulator,
        device_id: str,
        energy: Optional[EnergyModel] = None,
        ledger: Optional[SignalingLedger] = None,
        basestation: Optional[BaseStation] = None,
        profile: EnergyProfile = DEFAULT_PROFILE,
        rrc_profile: RrcProfile = WCDMA_PROFILE,
    ) -> None:
        self.sim = sim
        self.device_id = device_id
        self.energy = energy
        self.basestation = basestation
        self.profile = profile
        self.powered_on = True
        self.rrc = RrcStateMachine(
            sim,
            device_id,
            profile=rrc_profile,
            ledger=ledger,
            on_tail_elapsed=self._charge_tail,
            on_fach_elapsed=self._charge_fach,
            promotion_delay_fn=self._promotion_penalty_s,
        )
        # statistics
        self.sends = 0
        self.bytes_sent = 0
        self.aggregated_sends = 0  # sends that skipped setup (radio was hot)
        self.sends_rejected = 0

    def _promotion_penalty_s(self) -> float:
        """Extra RRC promotion latency imposed by a browned-out cell."""
        if self.basestation is None:
            return 0.0
        return self.basestation.extra_setup_delay_s()

    # ------------------------------------------------------------------
    def send(
        self,
        payload_bytes: int,
        payload: Any = None,
        on_delivered: Optional[Callable[[UplinkResult], None]] = None,
        on_rejected: Optional[Callable[[UplinkResult], None]] = None,
    ) -> UplinkResult:
        """Transmit ``payload_bytes`` to the base station.

        Returns a result handle immediately; ``delivered_at_s`` is filled in
        (and ``on_delivered`` fired) once the payload reaches the network.
        If the serving cell refuses admission — hard outage, brown-out
        congestion, or an injected RRC reject — the result is marked
        rejected, ``on_rejected`` fires instead (synchronously for
        admission refusals, later for a cell that dies mid-flight), and
        no RRC signaling or energy is spent on the attempt.
        Raises if the modem is powered off (dead relay).
        """
        if not self.powered_on:
            raise RuntimeError(f"modem {self.device_id} is powered off")
        if payload_bytes <= 0:
            raise ValueError(f"payload_bytes must be positive, got {payload_bytes}")
        result = UplinkResult(
            device_id=self.device_id,
            payload_bytes=payload_bytes,
            requested_at_s=self.sim.now,
            payload=payload,
        )
        if self.basestation is not None:
            cause = self.basestation.admit_uplink(self.device_id)
            if cause is not None:
                self._mark_rejected(result, cause, on_rejected)
                return result

        def when_ready(setup_was_needed: bool) -> None:
            result.setup_was_needed = setup_was_needed
            self._transmit(result, on_delivered, on_rejected)

        started_promotion = self.rrc.request_transmission(payload_bytes, when_ready)
        if started_promotion:
            # setup energy is paid once per promotion, over the promotion
            # window (the ramp in Fig. 7).
            self._charge(
                EnergyPhase.CELLULAR_SETUP,
                self.profile.cellular_setup_uah,
                duration_s=self.profile.cellular_setup_s,
            )
        return result

    def power_off(self) -> None:
        """Hard power-down (battery death); drops the RRC connection."""
        self.powered_on = False
        self.rrc.force_release()

    def power_on(self) -> None:
        self.powered_on = True

    # ------------------------------------------------------------------
    @property
    def rrc_cycles(self) -> int:
        """Completed RRC establish/release cycles so far."""
        return self.rrc.demotions

    # ------------------------------------------------------------------
    def _mark_rejected(
        self,
        result: UplinkResult,
        cause: str,
        on_rejected: Optional[Callable[[UplinkResult], None]],
    ) -> None:
        self.sends_rejected += 1
        result.rejected_at_s = self.sim.now
        result.reject_cause = cause
        if on_rejected is not None:
            on_rejected(result)

    def _transmit(
        self,
        result: UplinkResult,
        on_delivered: Optional[Callable[[UplinkResult], None]],
        on_rejected: Optional[Callable[[UplinkResult], None]] = None,
    ) -> None:
        self.sends += 1
        self.bytes_sent += result.payload_bytes
        if result.setup_was_needed is False:
            self.aggregated_sends += 1
        tx_uah = (
            self.profile.cellular_tx_base_uah
            + self.profile.cellular_per_byte_uah * result.payload_bytes
        )
        self._charge(EnergyPhase.CELLULAR_TX, tx_uah, duration_s=self.profile.cellular_tx_s)

        def deliver() -> None:
            if (
                self.basestation is not None
                and not self.basestation.accepts_signaling()
            ):
                # the cell died while the frame was on the air: the TX
                # energy is spent, but the payload never reached the core
                self._mark_rejected(result, "ran-down", on_rejected)
                return
            result.delivered_at_s = self.sim.now
            if self.basestation is not None:
                self.basestation.deliver_uplink(
                    self.device_id, result.payload_bytes, result.payload
                )
            if on_delivered is not None:
                on_delivered(result)

        self.sim.schedule(self.profile.cellular_tx_s, deliver, name="uplink_deliver")

    def _charge_tail(self, start_s: float, duration_s: float, full: bool) -> None:
        """RRC hook: charge high-power connected time pro rata."""
        fraction = min(1.0, duration_s / self.profile.cellular_tail_s)
        self._charge(
            EnergyPhase.CELLULAR_TAIL,
            self.profile.cellular_tail_uah * fraction,
            duration_s=duration_s,
            time_s=start_s,
        )

    def _charge_fach(self, start_s: float, duration_s: float) -> None:
        """RRC hook: charge low-power FACH dwell time (three-state WCDMA)."""
        tail_power_uah_per_s = (
            self.profile.cellular_tail_uah / self.profile.cellular_tail_s
        )
        self._charge(
            EnergyPhase.CELLULAR_TAIL,
            tail_power_uah_per_s * self.profile.fach_power_fraction * duration_s,
            duration_s=duration_s,
            time_s=start_s,
        )

    def _charge(
        self,
        phase: EnergyPhase,
        uah: float,
        duration_s: float = 0.0,
        time_s: Optional[float] = None,
    ) -> None:
        if self.energy is not None:
            self.energy.charge(
                phase, uah, time_s=self.sim.now if time_s is None else time_s,
                duration_s=duration_s,
            )
