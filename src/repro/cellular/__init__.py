"""Cellular network substrate.

Models the parts of a WCDMA/LTE access network that the paper's evaluation
touches: the RRC state machine whose establish/release cycles generate the
layer-3 signaling traffic counted in Fig. 15 (the "signaling storm"), a
modem that drives it per uplink transmission, and a base station that
aggregates control-channel load.
"""

from repro.cellular.signaling import (
    Direction,
    L3Message,
    L3MessageType,
    SignalingLedger,
    SETUP_SEQUENCE,
    RELEASE_SEQUENCE,
)
from repro.cellular.rrc import (
    LTE_PROFILE,
    RrcProfile,
    RrcState,
    RrcStateMachine,
    WCDMA_3STATE_PROFILE,
    WCDMA_PROFILE,
)
from repro.cellular.modem import CellularModem, UplinkResult
from repro.cellular.basestation import BaseStation, RanState
from repro.cellular.paging import PageAttempt, PagingChannel, PagingConfig
from repro.cellular.network import Cell, CellularNetwork, CombinedLedger

__all__ = [
    "Direction",
    "L3Message",
    "L3MessageType",
    "SignalingLedger",
    "SETUP_SEQUENCE",
    "RELEASE_SEQUENCE",
    "RrcProfile",
    "RrcState",
    "RrcStateMachine",
    "WCDMA_PROFILE",
    "LTE_PROFILE",
    "CellularModem",
    "UplinkResult",
    "BaseStation",
    "RanState",
    "PageAttempt",
    "PagingChannel",
    "PagingConfig",
    "Cell",
    "CellularNetwork",
    "CombinedLedger",
]
