"""Base station and control-channel load accounting.

The operator-side view of the signaling storm: the base station receives
every uplink, forwards payloads to attached sinks (the IM server model),
and exposes control-channel load metrics — offered layer-3 rate, peak
windowed rate, and a storm flag against a configurable capacity.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cellular.signaling import SignalingLedger
from repro.sim.engine import Simulator

#: Sink signature: (time_s, device_id, payload_bytes, payload) -> None
UplinkSink = Callable[[float, str, int, Any], None]


class BaseStation:
    """One cell's base station.

    Parameters
    ----------
    sim:
        Owning simulator.
    ledger:
        The shared signaling capture (same one the modems write to); the
        base station reads it for load metrics.
    core_latency_s:
        Delay between air-interface delivery and the payload reaching an
        attached sink (core network + internet to the IM server).
    control_channel_capacity_msgs_per_s:
        Layer-3 rate above which the control channel is considered
        overloaded — the "storm" condition of Sec. II-B.
    """

    def __init__(
        self,
        sim: Simulator,
        ledger: Optional[SignalingLedger] = None,
        core_latency_s: float = 0.05,
        control_channel_capacity_msgs_per_s: float = 50.0,
    ) -> None:
        self.sim = sim
        self.ledger = ledger if ledger is not None else SignalingLedger()
        self.core_latency_s = core_latency_s
        self.control_channel_capacity = control_channel_capacity_msgs_per_s
        self._sinks: List[UplinkSink] = []
        # statistics
        self.uplinks = 0
        self.bytes_received = 0
        self.uplinks_by_device: Dict[str, int] = {}
        self._uplink_times: List[float] = []

    # ------------------------------------------------------------------
    def attach_sink(self, sink: UplinkSink) -> None:
        """Register a payload consumer (e.g. an IM server)."""
        self._sinks.append(sink)

    def deliver_uplink(self, device_id: str, payload_bytes: int, payload: Any) -> None:
        """Called by a modem when its transmission completes on the air."""
        now = self.sim.now
        self.uplinks += 1
        self.bytes_received += payload_bytes
        self.uplinks_by_device[device_id] = self.uplinks_by_device.get(device_id, 0) + 1
        self._uplink_times.append(now)
        for sink in self._sinks:
            self.sim.schedule(
                self.core_latency_s,
                sink,
                now + self.core_latency_s,
                device_id,
                payload_bytes,
                payload,
                name="core_deliver",
            )

    # ------------------------------------------------------------------
    # control-channel load metrics
    # ------------------------------------------------------------------
    def signaling_total(self) -> int:
        """Total layer-3 messages seen by this cell."""
        return self.ledger.total

    def signaling_rate(self, window_start_s: float, window_end_s: float) -> float:
        """Average L3 message rate over a window (messages/second)."""
        return self.ledger.rate_per_second(window_start_s, window_end_s)

    def peak_signaling_rate(self, window_s: float = 10.0) -> float:
        """Peak L3 rate over any aligned window of ``window_s`` seconds."""
        if window_s <= 0:
            raise ValueError("window must be positive")
        counts: Dict[int, int] = {}
        for msg in self.ledger.messages():
            counts[int(msg.time_s // window_s)] = counts.get(int(msg.time_s // window_s), 0) + 1
        if not counts:
            return 0.0
        return max(counts.values()) / window_s

    def is_storming(self, window_s: float = 10.0) -> bool:
        """Whether peak signaling load exceeded the control-channel capacity."""
        return self.peak_signaling_rate(window_s) > self.control_channel_capacity

    def storm_headroom(self, window_s: float = 10.0) -> float:
        """Capacity fraction still unused at the observed peak (can be < 0)."""
        if self.control_channel_capacity <= 0:
            return 0.0
        return 1.0 - self.peak_signaling_rate(window_s) / self.control_channel_capacity

    def inter_uplink_times(self) -> List[float]:
        """Gaps between consecutive uplink arrivals (for burstiness stats)."""
        times = self._uplink_times
        return [b - a for a, b in zip(times, times[1:])]
