"""Base station and control-channel load accounting.

The operator-side view of the signaling storm: the base station receives
every uplink, forwards payloads to attached sinks (the IM server model),
and exposes control-channel load metrics — offered layer-3 rate, peak
windowed rate, and a storm flag against a configurable capacity.

The cell is also a fault domain. :class:`RanState` models the serving
cell's health: ``UP`` (normal), ``BROWNOUT`` (degraded signaling capacity
and elevated attach latency — uplinks may be rejected for congestion or
by an injected RRC-rejection gate), and ``DOWN`` (hard outage — every
uplink is rejected). The chaos engine drives the state machine;
modems consult :meth:`BaseStation.admit_uplink` before spending RRC
signaling, and the degraded-mode fallback senders probe
:meth:`BaseStation.accepts_signaling` to decide when to reattach.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cellular.signaling import SignalingLedger
from repro.sim.engine import Simulator

#: Sink signature: (time_s, device_id, payload_bytes, payload) -> None
UplinkSink = Callable[[float, str, int, Any], None]

#: Listener signature: (time_s, old_state, new_state) -> None
RanStateListener = Callable[[float, "RanState", "RanState"], None]


class RanState(str, enum.Enum):
    """Health of the serving cell's radio access network."""

    UP = "up"
    BROWNOUT = "brownout"
    DOWN = "down"


class BaseStation:
    """One cell's base station.

    Parameters
    ----------
    sim:
        Owning simulator.
    ledger:
        The shared signaling capture (same one the modems write to); the
        base station reads it for load metrics.
    core_latency_s:
        Delay between air-interface delivery and the payload reaching an
        attached sink (core network + internet to the IM server).
    control_channel_capacity_msgs_per_s:
        Layer-3 rate above which the control channel is considered
        overloaded — the "storm" condition of Sec. II-B.
    """

    def __init__(
        self,
        sim: Simulator,
        ledger: Optional[SignalingLedger] = None,
        core_latency_s: float = 0.05,
        control_channel_capacity_msgs_per_s: float = 50.0,
    ) -> None:
        self.sim = sim
        self.ledger = ledger if ledger is not None else SignalingLedger()
        self.core_latency_s = core_latency_s
        self.control_channel_capacity = control_channel_capacity_msgs_per_s
        self._sinks: List[UplinkSink] = []
        # RAN health state machine
        self.ran_state = RanState.UP
        self.brownout_capacity_factor = 1.0
        self.brownout_extra_setup_s = 0.0
        #: Admission window for brown-out congestion control (seconds).
        self.admission_window_s = 1.0
        #: Injected RRC connection-reject gate (installed by chaos);
        #: called with the device id, returns True to reject the attempt.
        self.rrc_reject_gate: Optional[Callable[[str], bool]] = None
        self._ran_listeners: List[RanStateListener] = []
        self._admitted_times: List[float] = []
        #: Closed/open outage intervals as ``[down_at, up_at_or_None]``.
        self.outage_intervals: List[List[Optional[float]]] = []
        # statistics
        self.uplinks = 0
        self.bytes_received = 0
        self.uplinks_by_device: Dict[str, int] = {}
        self._uplink_times: List[float] = []
        self.uplinks_rejected = 0
        self.rejections_by_cause: Dict[str, int] = {}
        self.rrc_rejections = 0
        self.outage_count = 0
        self.brownout_count = 0
        self.outage_time_s = 0.0

    # ------------------------------------------------------------------
    def attach_sink(self, sink: UplinkSink) -> None:
        """Register a payload consumer (e.g. an IM server)."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # RAN health state machine
    # ------------------------------------------------------------------
    def subscribe_ran(self, listener: RanStateListener) -> None:
        """Register a callback fired on every RAN state transition."""
        self._ran_listeners.append(listener)

    def _set_ran_state(self, new_state: RanState) -> None:
        old = self.ran_state
        if new_state is old:
            return
        now = self.sim.now
        if new_state is RanState.DOWN:
            self.outage_count += 1
            self.outage_intervals.append([now, None])
        elif old is RanState.DOWN:
            if self.outage_intervals and self.outage_intervals[-1][1] is None:
                self.outage_intervals[-1][1] = now
                self.outage_time_s += now - self.outage_intervals[-1][0]
        self.ran_state = new_state
        for listener in self._ran_listeners:
            listener(now, old, new_state)

    def outage(self) -> None:
        """Hard outage: the cell stops admitting any uplink."""
        self._set_ran_state(RanState.DOWN)

    def brownout(
        self,
        capacity_factor: float = 0.5,
        extra_setup_s: float = 0.0,
    ) -> None:
        """Degrade the cell: reduced signaling capacity, slower attach.

        A brown-out never pre-empts an ongoing hard outage — callers that
        want that must :meth:`restore` first.
        """
        if not 0.0 < capacity_factor <= 1.0:
            raise ValueError(
                f"capacity_factor must be in (0, 1], got {capacity_factor}"
            )
        if extra_setup_s < 0:
            raise ValueError(f"extra_setup_s must be >= 0, got {extra_setup_s}")
        if self.ran_state is RanState.DOWN:
            return
        self.brownout_capacity_factor = capacity_factor
        self.brownout_extra_setup_s = extra_setup_s
        self.brownout_count += 1
        self._set_ran_state(RanState.BROWNOUT)

    def restore(self) -> None:
        """Return the cell to full health."""
        self.brownout_capacity_factor = 1.0
        self.brownout_extra_setup_s = 0.0
        self._admitted_times.clear()
        self._set_ran_state(RanState.UP)

    def accepts_signaling(self) -> bool:
        """Cheap broadcast-channel probe: is the cell attachable at all?

        Degraded-mode senders poll this while detached; it is True in
        ``BROWNOUT`` (the cell is reachable, merely slow/lossy).
        """
        return self.ran_state is not RanState.DOWN

    def extra_setup_delay_s(self) -> float:
        """Additional RRC promotion latency imposed by the current state."""
        if self.ran_state is RanState.BROWNOUT:
            return self.brownout_extra_setup_s
        return 0.0

    def _reject(self, cause: str) -> str:
        self.uplinks_rejected += 1
        self.rejections_by_cause[cause] = self.rejections_by_cause.get(cause, 0) + 1
        return cause

    def admit_uplink(self, device_id: str) -> Optional[str]:
        """Admission control consulted by modems before RRC signaling.

        Returns ``None`` when the uplink may proceed, otherwise the
        rejection cause: ``"ran-down"`` (hard outage), ``"rrc-reject"``
        (injected connection reject), or ``"ran-congested"`` (the
        brown-out capacity window is full). In the ``UP`` state this is
        allocation-free and always admits, so healthy runs are
        byte-identical with or without the fault domain.
        """
        if self.ran_state is RanState.UP:
            return None
        if self.ran_state is RanState.DOWN:
            return self._reject("ran-down")
        # BROWNOUT: injected RRC rejects first, then windowed capacity.
        if self.rrc_reject_gate is not None and self.rrc_reject_gate(device_id):
            self.rrc_rejections += 1
            return self._reject("rrc-reject")
        now = self.sim.now
        window = self.admission_window_s
        cutoff = now - window
        admitted = self._admitted_times
        while admitted and admitted[0] < cutoff:
            admitted.pop(0)
        cap = self.control_channel_capacity * self.brownout_capacity_factor * window
        if len(admitted) >= max(1.0, cap):
            return self._reject("ran-congested")
        admitted.append(now)
        return None

    def deliver_uplink(self, device_id: str, payload_bytes: int, payload: Any) -> None:
        """Called by a modem when its transmission completes on the air."""
        now = self.sim.now
        self.uplinks += 1
        self.bytes_received += payload_bytes
        self.uplinks_by_device[device_id] = self.uplinks_by_device.get(device_id, 0) + 1
        self._uplink_times.append(now)
        for sink in self._sinks:
            self.sim.schedule(
                self.core_latency_s,
                sink,
                now + self.core_latency_s,
                device_id,
                payload_bytes,
                payload,
                name="core_deliver",
            )

    # ------------------------------------------------------------------
    # control-channel load metrics
    # ------------------------------------------------------------------
    def signaling_total(self) -> int:
        """Total layer-3 messages seen by this cell."""
        return self.ledger.total

    def signaling_rate(self, window_start_s: float, window_end_s: float) -> float:
        """Average L3 message rate over a window (messages/second)."""
        return self.ledger.rate_per_second(window_start_s, window_end_s)

    def peak_signaling_rate(self, window_s: float = 10.0) -> float:
        """Peak L3 rate over any aligned window of ``window_s`` seconds."""
        if window_s <= 0:
            raise ValueError("window must be positive")
        counts: Dict[int, int] = {}
        for msg in self.ledger.messages():
            counts[int(msg.time_s // window_s)] = counts.get(int(msg.time_s // window_s), 0) + 1
        if not counts:
            return 0.0
        return max(counts.values()) / window_s

    def is_storming(self, window_s: float = 10.0) -> bool:
        """Whether peak signaling load exceeded the control-channel capacity."""
        return self.peak_signaling_rate(window_s) > self.control_channel_capacity

    def storm_headroom(self, window_s: float = 10.0) -> float:
        """Capacity fraction still unused at the observed peak (can be < 0)."""
        if self.control_channel_capacity <= 0:
            return 0.0
        return 1.0 - self.peak_signaling_rate(window_s) / self.control_channel_capacity

    def inter_uplink_times(self) -> List[float]:
        """Gaps between consecutive uplink arrivals (for burstiness stats)."""
        times = self._uplink_times
        return [b - a for a, b in zip(times, times[1:])]
