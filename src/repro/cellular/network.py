"""Multi-cell cellular network.

The paper's evaluation is single-cell, but the storm it motivates is an
operator-scale phenomenon: crowds concentrate in particular cells. This
module models a small network of base stations with position-based
attachment so experiments can ask per-cell questions — which cells storm,
how relay deployment shifts the load — without changing any device-side
code: each phone is simply built against its attachment cell's base
station and ledger.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import L3Message, SignalingLedger
from repro.mobility.space import Position, distance_between
from repro.sim.engine import Simulator


def grid_cell_positions(
    arena_width: float,
    arena_height: float,
    cells_x: int,
    cells_y: int,
) -> List[Position]:
    """Cell-center positions of a ``cells_x × cells_y`` grid over an arena.

    Row-major with x fastest: cell index ``c`` sits at column
    ``c % cells_x`` — the layout the sharded kernel's column-contiguous
    partition relies on.
    """
    if cells_x < 1 or cells_y < 1:
        raise ValueError(f"need at least a 1x1 grid, got {cells_x}x{cells_y}")
    return [
        ((i + 0.5) * arena_width / cells_x, (j + 0.5) * arena_height / cells_y)
        for j in range(cells_y)
        for i in range(cells_x)
    ]


@dataclasses.dataclass
class Cell:
    """One cell: a base station, its own signaling capture, a location."""

    cell_id: str
    position: Position
    basestation: BaseStation
    ledger: SignalingLedger


class CombinedLedger:
    """Read-only aggregate view over every cell's ledger.

    Implements the subset of the :class:`SignalingLedger` interface the
    metrics layer consumes, so `collect_metrics` works unchanged on
    multi-cell runs.
    """

    def __init__(self, ledgers: Sequence[SignalingLedger]) -> None:
        self._ledgers = list(ledgers)

    @property
    def total(self) -> int:
        return sum(ledger.total for ledger in self._ledgers)

    @property
    def total_cycles(self) -> int:
        return sum(ledger.total_cycles for ledger in self._ledgers)

    def count_for(self, device_id: str) -> int:
        return sum(ledger.count_for(device_id) for ledger in self._ledgers)

    def cycles_for(self, device_id: str) -> int:
        return sum(ledger.cycles_for(device_id) for ledger in self._ledgers)

    def messages(self, device_id: Optional[str] = None) -> List[L3Message]:
        out: List[L3Message] = []
        for ledger in self._ledgers:
            out.extend(ledger.messages(device_id))
        out.sort(key=lambda m: m.time_s)
        return out

    def __len__(self) -> int:
        return self.total


class CellularNetwork:
    """A set of cells with nearest-cell attachment."""

    def __init__(
        self,
        sim: Simulator,
        cell_positions: Sequence[Position],
        core_latency_s: float = 0.05,
        control_channel_capacity_msgs_per_s: float = 50.0,
    ) -> None:
        if not cell_positions:
            raise ValueError("a network needs at least one cell")
        self.sim = sim
        self.cells: List[Cell] = []
        for i, position in enumerate(cell_positions):
            ledger = SignalingLedger()
            basestation = BaseStation(
                sim,
                ledger=ledger,
                core_latency_s=core_latency_s,
                control_channel_capacity_msgs_per_s=(
                    control_channel_capacity_msgs_per_s
                ),
            )
            self.cells.append(
                Cell(f"cell-{i}", (float(position[0]), float(position[1])),
                     basestation, ledger)
            )
        self._attachment: Dict[str, Cell] = {}

    # ------------------------------------------------------------------
    def attach(self, device_id: str, position: Position) -> Cell:
        """Attach a device to its nearest cell (build-time attachment)."""
        cell = min(
            self.cells, key=lambda c: distance_between(c.position, position)
        )
        self._attachment[device_id] = cell
        return cell

    def reattach(self, device_id: str, position: Position) -> Tuple[Cell, bool]:
        """Re-evaluate nearest-cell attachment (handover check).

        Returns ``(cell, changed)`` where ``changed`` is true when the
        device moved to a different cell than it was attached to. The
        caller (e.g. the sharded kernel's handover pass) is responsible
        for rebinding the device's modem to the new cell's base station
        and ledger — this method only updates the attachment map.
        """
        new_cell = min(
            self.cells, key=lambda c: distance_between(c.position, position)
        )
        old_cell = self._attachment.get(device_id)
        self._attachment[device_id] = new_cell
        return new_cell, old_cell is not new_cell

    def cell_of(self, device_id: str) -> Cell:
        try:
            return self._attachment[device_id]
        except KeyError:
            raise KeyError(f"device {device_id!r} is not attached") from None

    def attach_sink_everywhere(self, sink) -> None:
        """Attach one payload sink (e.g. the IM server) to every cell."""
        for cell in self.cells:
            cell.basestation.attach_sink(sink)

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    @property
    def combined_ledger(self) -> CombinedLedger:
        return CombinedLedger([cell.ledger for cell in self.cells])

    def load_by_cell(self) -> Dict[str, int]:
        """Cell id → total layer-3 messages."""
        return {cell.cell_id: cell.ledger.total for cell in self.cells}

    def attached_by_cell(self) -> Dict[str, int]:
        """Cell id → number of attached devices."""
        counts = {cell.cell_id: 0 for cell in self.cells}
        for cell in self._attachment.values():
            counts[cell.cell_id] += 1
        return counts

    def storming_cells(self, window_s: float = 60.0) -> List[str]:
        """Cells whose peak signaling exceeds their control capacity."""
        return [
            cell.cell_id
            for cell in self.cells
            if cell.basestation.is_storming(window_s)
        ]

    def hottest_cell(self) -> Tuple[str, int]:
        """(cell id, L3 count) of the most loaded cell."""
        cell = max(self.cells, key=lambda c: c.ledger.total)
        return cell.cell_id, cell.ledger.total
