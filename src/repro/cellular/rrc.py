"""Radio Resource Control (RRC) state machine.

The signaling storm the paper attacks is a direct consequence of this
machine: every uplink from IDLE pays a full establish/release cycle (the
layer-3 sequences in :mod:`repro.cellular.signaling`) plus a multi-second
high-power *tail* before the radio demotes back to IDLE (the elevated
plateau of the paper's Fig. 7 current trace).

A transmission while the radio is still CONNECTED — i.e. within the tail
of a previous one — pays **no** setup signaling and no new tail; this is
exactly the mechanism the relay's aggregation exploits.

Two network profiles are provided: a WCDMA-flavoured one (the paper's
testbed network) and an LTE-flavoured one for ablations.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, List, Optional, Tuple

from repro.cellular.signaling import (
    Direction,
    FACH_PROMOTION_SEQUENCE,
    L3MessageType,
    RELEASE_SEQUENCE,
    SETUP_SEQUENCE,
    SignalingLedger,
    reconfiguration_count,
)
from repro.sim.engine import Simulator
from repro.sim.events import Event


class RrcState(str, enum.Enum):
    """RRC states (paper Sec. II-B).

    The two-state profiles use IDLE/CONNECTING/CONNECTED; the three-state
    WCDMA profile additionally passes through FACH — a low-power shared
    channel between the DCH tail and IDLE, from which re-promotion is fast
    and cheap (a CELL UPDATE exchange instead of a full establishment).
    """

    IDLE = "idle"
    CONNECTING = "connecting"
    CONNECTED = "connected"  # DCH in WCDMA terms
    FACH = "fach"


@dataclasses.dataclass(frozen=True)
class RrcProfile:
    """Timing and signaling parameters of one network's RRC machine."""

    name: str
    setup_latency_s: float  # promotion delay IDLE → CONNECTED
    tail_s: float  # inactivity timer before demotion (DCH tail)
    setup_sequence: Tuple[Tuple[L3MessageType, Direction], ...] = SETUP_SEQUENCE
    release_sequence: Tuple[Tuple[L3MessageType, Direction], ...] = RELEASE_SEQUENCE
    #: FACH dwell time after the DCH tail; 0 disables the FACH state
    #: (the default two-state machine used for calibration).
    fach_tail_s: float = 0.0
    #: FACH → DCH re-promotion latency.
    fach_promotion_latency_s: float = 0.5
    fach_promotion_sequence: Tuple[Tuple[L3MessageType, Direction], ...] = (
        FACH_PROMOTION_SEQUENCE
    )

    @property
    def has_fach(self) -> bool:
        return self.fach_tail_s > 0.0

    @property
    def messages_per_cycle(self) -> int:
        """L3 messages in one full establish/release cycle (no reconfigs)."""
        return len(self.setup_sequence) + len(self.release_sequence)


#: The paper's evaluation network (WCDMA, NetOptiMaster capture).
WCDMA_PROFILE = RrcProfile(name="wcdma", setup_latency_s=1.5, tail_s=7.5)

#: LTE-flavoured variant for ablations (faster setup, longer tail).
LTE_PROFILE = RrcProfile(name="lte", setup_latency_s=0.3, tail_s=10.0)

#: Full three-state WCDMA machine (DCH → FACH → IDLE), per Sec. II-B.
WCDMA_3STATE_PROFILE = RrcProfile(
    name="wcdma-3state", setup_latency_s=1.5, tail_s=5.0, fach_tail_s=12.0
)


class RrcStateMachine:
    """Per-device RRC machine driven by the simulator.

    Parameters
    ----------
    sim:
        The owning simulator (timers for promotion and tail demotion).
    device_id:
        Ledger attribution key.
    profile:
        Network timing/signaling profile.
    ledger:
        Shared signaling capture; may be ``None`` for isolated unit tests.
    on_state_change:
        Optional hook ``(time_s, old_state, new_state)``.
    on_tail_elapsed:
        Optional hook ``(start_s, duration_s, full_tail)`` fired whenever
        high-power connected time elapses — the energy model charges the
        tail from here so traces and ledgers agree.
    on_fach_elapsed:
        Optional hook ``(start_s, duration_s)`` fired when time spent in
        the low-power FACH state elapses (three-state profile only).
    """

    def __init__(
        self,
        sim: Simulator,
        device_id: str,
        profile: RrcProfile = WCDMA_PROFILE,
        ledger: Optional[SignalingLedger] = None,
        on_state_change: Optional[Callable[[float, RrcState, RrcState], None]] = None,
        on_tail_elapsed: Optional[Callable[[float, float, bool], None]] = None,
        on_fach_elapsed: Optional[Callable[[float, float], None]] = None,
        promotion_delay_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.sim = sim
        self.device_id = device_id
        self.profile = profile
        self.ledger = ledger
        self.on_state_change = on_state_change
        self.on_tail_elapsed = on_tail_elapsed
        self.on_fach_elapsed = on_fach_elapsed
        #: Extra IDLE→CONNECTED promotion latency, sampled per promotion.
        #: A browned-out cell injects elevated attach latency through this
        #: hook; ``None`` (and a hook returning 0.0) is the healthy path.
        self.promotion_delay_fn = promotion_delay_fn
        self.state = RrcState.IDLE
        self._tail_event: Optional[Event] = None
        self._fach_event: Optional[Event] = None
        self._last_activity_s = 0.0
        self._fach_entered_s = 0.0
        self._pending_after_connect: List[Callable[[], None]] = []
        # statistics
        self.promotions = 0
        self.fach_promotions = 0
        self.demotions = 0
        self.connected_time_s = 0.0
        self.fach_time_s = 0.0
        self.transmissions = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def request_transmission(
        self, payload_bytes: int, when_ready: Callable[[bool], None]
    ) -> bool:
        """Ask for an uplink grant for ``payload_bytes``.

        ``when_ready(setup_was_needed)`` fires once the radio is CONNECTED —
        immediately if it already is, after the promotion latency otherwise.
        Oversized payloads emit radio-bearer reconfiguration messages.
        Returns ``True`` iff this request started a new promotion (the
        caller then pays the setup energy exactly once per promotion).
        """
        self.transmissions += 1
        now = self.sim.now
        self._emit_reconfigurations(now, payload_bytes)
        if self.state == RrcState.CONNECTED:
            self._account_connected_time(now)
            self._rearm_tail()
            when_ready(False)
            return False
        if self.state == RrcState.CONNECTING:
            self._pending_after_connect.append(lambda: when_ready(True))
            return False
        if self.state == RrcState.FACH:
            # fast re-promotion: CELL UPDATE exchange instead of full setup
            self._leave_fach(now)
            self._set_state(RrcState.CONNECTING)
            if self.ledger is not None:
                self.ledger.record_sequence(
                    now, self.device_id, self.profile.fach_promotion_sequence
                )
            self._pending_after_connect.append(lambda: when_ready(False))
            self.sim.schedule(
                self.profile.fach_promotion_latency_s,
                self._finish_fach_promotion,
                name="rrc_fach_promote",
            )
            return False
        # IDLE → start promotion
        self._set_state(RrcState.CONNECTING)
        if self.ledger is not None:
            self.ledger.record_sequence(now, self.device_id, self.profile.setup_sequence)
        self._pending_after_connect.append(lambda: when_ready(True))
        setup_s = self.profile.setup_latency_s
        if self.promotion_delay_fn is not None:
            setup_s += self.promotion_delay_fn()
        self.sim.schedule(setup_s, self._finish_promotion, name="rrc_promote")
        return True

    def force_release(self) -> None:
        """Immediately drop to IDLE (e.g. device powered off)."""
        if self.state == RrcState.IDLE:
            return
        now = self.sim.now
        if self.state == RrcState.CONNECTED:
            self._account_connected_time(now)
        if self.state == RrcState.FACH:
            self._leave_fach(now)
        self.sim.cancel(self._tail_event)
        self.sim.cancel(self._fach_event)
        self._tail_event = None
        self._fach_event = None
        self._pending_after_connect.clear()
        self._set_state(RrcState.IDLE)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _emit_reconfigurations(self, now: float, payload_bytes: int) -> None:
        if self.ledger is None:
            return
        for _ in range(reconfiguration_count(payload_bytes)):
            self.ledger.record(
                now,
                self.device_id,
                L3MessageType.RADIO_BEARER_RECONFIGURATION,
                Direction.DOWNLINK,
            )

    def _finish_promotion(self) -> None:
        if self.state != RrcState.CONNECTING:
            return  # force_release raced the promotion
        self.promotions += 1
        self._enter_connected()

    def _finish_fach_promotion(self) -> None:
        if self.state != RrcState.CONNECTING:
            return
        self.fach_promotions += 1
        self._enter_connected()

    def _enter_connected(self) -> None:
        self._set_state(RrcState.CONNECTED)
        self._last_activity_s = self.sim.now
        self._rearm_tail()
        callbacks, self._pending_after_connect = self._pending_after_connect, []
        for callback in callbacks:
            callback()

    def _rearm_tail(self) -> None:
        self.sim.cancel(self._tail_event)
        self._last_activity_s = self.sim.now
        self._tail_event = self.sim.schedule(
            self.profile.tail_s, self._demote, name="rrc_tail"
        )

    def _account_connected_time(self, now: float) -> None:
        """Charge the high-power time elapsed since the last activity."""
        elapsed = now - self._last_activity_s
        if elapsed > 0:
            self.connected_time_s += elapsed
            if self.on_tail_elapsed is not None:
                full = elapsed >= self.profile.tail_s
                self.on_tail_elapsed(self._last_activity_s, elapsed, full)
        self._last_activity_s = now

    def _demote(self) -> None:
        if self.state != RrcState.CONNECTED:
            return
        now = self.sim.now
        self._account_connected_time(now)
        self._tail_event = None
        if self.profile.has_fach:
            self._fach_entered_s = now
            self._set_state(RrcState.FACH)
            self._fach_event = self.sim.schedule(
                self.profile.fach_tail_s, self._demote_from_fach, name="rrc_fach_tail"
            )
            return
        self._finish_demotion(now)

    def _demote_from_fach(self) -> None:
        if self.state != RrcState.FACH:
            return
        now = self.sim.now
        self._leave_fach(now)
        self._fach_event = None
        self._finish_demotion(now)

    def _leave_fach(self, now: float) -> None:
        """Account FACH dwell time and cancel its timer."""
        elapsed = now - self._fach_entered_s
        if elapsed > 0:
            self.fach_time_s += elapsed
            if self.on_fach_elapsed is not None:
                self.on_fach_elapsed(self._fach_entered_s, elapsed)
        self.sim.cancel(self._fach_event)
        self._fach_event = None

    def _finish_demotion(self, now: float) -> None:
        self.demotions += 1
        if self.ledger is not None:
            self.ledger.record_sequence(now, self.device_id, self.profile.release_sequence)
            self.ledger.record_cycle(self.device_id)
        self._set_state(RrcState.IDLE)

    def _set_state(self, new_state: RrcState) -> None:
        old = self.state
        if old == new_state:
            return
        self.state = new_state
        if self.on_state_change is not None:
            self.on_state_change(self.sim.now, old, new_state)
