"""Layer-3 signaling messages and the ledger that counts them.

The paper measures signaling cost by capturing **layer-3 messages** with
NetOptiMaster on a live WCDMA network (Sec. V-B, Fig. 15). Each heartbeat
transmission from IDLE triggers a full RRC connection establish/release
cycle; Fig. 15's slope is ≈ 8 layer-3 messages per cycle, which matches the
8-message cycle modelled here (5 to establish, 3 to release).

Oversized transmissions additionally trigger a radio-bearer
reconfiguration — the paper observes that a relay carrying more UEs' beats
"incurs slightly more cellular signaling traffic ... more data in once
transmission incurs more cellular traffic".
"""

from __future__ import annotations

import dataclasses
import enum
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple


class L3MessageType(str, enum.Enum):
    """The layer-3 (RRC) message types the model emits."""

    RRC_CONNECTION_REQUEST = "rrc_connection_request"
    RRC_CONNECTION_SETUP = "rrc_connection_setup"
    RRC_CONNECTION_SETUP_COMPLETE = "rrc_connection_setup_complete"
    RADIO_BEARER_SETUP = "radio_bearer_setup"
    RADIO_BEARER_SETUP_COMPLETE = "radio_bearer_setup_complete"
    RADIO_BEARER_RECONFIGURATION = "radio_bearer_reconfiguration"
    SIGNALLING_CONNECTION_RELEASE_INDICATION = "signalling_connection_release_indication"
    RRC_CONNECTION_RELEASE = "rrc_connection_release"
    RRC_CONNECTION_RELEASE_COMPLETE = "rrc_connection_release_complete"
    # FACH↔DCH transitions in the three-state WCDMA machine
    CELL_UPDATE = "cell_update"
    CELL_UPDATE_CONFIRM = "cell_update_confirm"


class Direction(str, enum.Enum):
    """Uplink (UE → network) or downlink (network → UE)."""

    UPLINK = "uplink"
    DOWNLINK = "downlink"


#: Messages exchanged to establish an RRC connection (5 messages).
SETUP_SEQUENCE: Tuple[Tuple[L3MessageType, Direction], ...] = (
    (L3MessageType.RRC_CONNECTION_REQUEST, Direction.UPLINK),
    (L3MessageType.RRC_CONNECTION_SETUP, Direction.DOWNLINK),
    (L3MessageType.RRC_CONNECTION_SETUP_COMPLETE, Direction.UPLINK),
    (L3MessageType.RADIO_BEARER_SETUP, Direction.DOWNLINK),
    (L3MessageType.RADIO_BEARER_SETUP_COMPLETE, Direction.UPLINK),
)

#: Messages exchanged to release an RRC connection (3 messages).
RELEASE_SEQUENCE: Tuple[Tuple[L3MessageType, Direction], ...] = (
    (L3MessageType.SIGNALLING_CONNECTION_RELEASE_INDICATION, Direction.UPLINK),
    (L3MessageType.RRC_CONNECTION_RELEASE, Direction.DOWNLINK),
    (L3MessageType.RRC_CONNECTION_RELEASE_COMPLETE, Direction.UPLINK),
)

#: Messages for a FACH → DCH re-promotion (2 messages, three-state WCDMA).
FACH_PROMOTION_SEQUENCE: Tuple[Tuple[L3MessageType, Direction], ...] = (
    (L3MessageType.CELL_UPDATE, Direction.UPLINK),
    (L3MessageType.CELL_UPDATE_CONFIRM, Direction.DOWNLINK),
)

#: A radio-bearer reconfiguration is triggered for every additional
#: ``RECONFIG_PAYLOAD_STEP_BYTES`` of payload beyond the first step —
#: the "slightly more signaling for bigger aggregates" effect of Fig. 15.
RECONFIG_PAYLOAD_STEP_BYTES = 150


def reconfiguration_count(payload_bytes: int) -> int:
    """Extra L3 messages needed for a ``payload_bytes`` transmission."""
    if payload_bytes < 0:
        raise ValueError(f"payload must be non-negative, got {payload_bytes}")
    return payload_bytes // RECONFIG_PAYLOAD_STEP_BYTES


@dataclasses.dataclass(frozen=True)
class L3Message:
    """One captured layer-3 message (what NetOptiMaster would log)."""

    time_s: float
    device_id: str
    msg_type: L3MessageType
    direction: Direction


class SignalingLedger:
    """Append-only capture of layer-3 messages, with per-device counts.

    The ledger is shared between every modem and the base station of one
    simulation, mirroring a single air-interface capture.
    """

    def __init__(self, keep_messages: bool = True) -> None:
        self.keep_messages = keep_messages
        self._messages: List[L3Message] = []
        self._count_by_device: Counter = Counter()
        self._count_by_type: Counter = Counter()
        self._cycles_by_device: Counter = Counter()
        self.total = 0

    # ------------------------------------------------------------------
    def record(
        self, time_s: float, device_id: str, msg_type: L3MessageType, direction: Direction
    ) -> None:
        """Record one layer-3 message."""
        self.total += 1
        self._count_by_device[device_id] += 1
        self._count_by_type[msg_type] += 1
        if self.keep_messages:
            self._messages.append(L3Message(time_s, device_id, msg_type, direction))

    def record_sequence(
        self,
        time_s: float,
        device_id: str,
        sequence: Iterable[Tuple[L3MessageType, Direction]],
    ) -> int:
        """Record a whole message sequence; returns how many were recorded."""
        n = 0
        for msg_type, direction in sequence:
            self.record(time_s, device_id, msg_type, direction)
            n += 1
        return n

    def record_cycle(self, device_id: str) -> None:
        """Note a completed RRC establish/release cycle for ``device_id``."""
        self._cycles_by_device[device_id] += 1

    # ------------------------------------------------------------------
    def count_for(self, device_id: str) -> int:
        """Layer-3 messages attributed to one device."""
        return self._count_by_device.get(device_id, 0)

    def count_for_type(self, msg_type: L3MessageType) -> int:
        return self._count_by_type.get(msg_type, 0)

    def cycles_for(self, device_id: str) -> int:
        """Completed RRC cycles for one device."""
        return self._cycles_by_device.get(device_id, 0)

    @property
    def total_cycles(self) -> int:
        return sum(self._cycles_by_device.values())

    def messages(self, device_id: Optional[str] = None) -> List[L3Message]:
        """Captured messages, optionally filtered to one device."""
        if device_id is None:
            return list(self._messages)
        return [m for m in self._messages if m.device_id == device_id]

    def rate_per_second(self, window_start_s: float, window_end_s: float) -> float:
        """Average L3 message rate over a time window (needs kept messages)."""
        if window_end_s <= window_start_s:
            raise ValueError("window must have positive length")
        if not self.keep_messages:
            raise RuntimeError("rate queries require keep_messages=True")
        n = sum(1 for m in self._messages if window_start_s <= m.time_s < window_end_s)
        return n / (window_end_s - window_start_s)

    def by_device(self) -> Dict[str, int]:
        """Device → message-count mapping."""
        return dict(self._count_by_device)

    def __len__(self) -> int:
        return self.total
