"""Sweep result containers: points, per-point failures, the strict-mode error.

:class:`SweepResult` is the value every backend produces — the same
canonical-order point list on every host that runs (or resumes) the same
grid. Fault tolerance adds :class:`SweepError` (one structured record per
point that exhausted its attempts) and :class:`SweepFailure` (the
exception strict mode raises *after* the whole grid has been driven, so
completed points are already published to the cache and the sweep is
resumable).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.metrics import SweepTelemetry


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One grid point: the parameters used and the metrics produced."""

    params: Mapping[str, Any]
    metrics: Mapping[str, float]


@dataclasses.dataclass(frozen=True)
class SweepError:
    """One grid point that failed after exhausting its retry budget.

    ``error`` is the ``TypeName: message`` form of the last exception;
    ``traceback`` its formatted traceback when the failure happened in
    this process (empty when only the marker another dispatcher published
    is available). ``attempts`` counts runner invocations made for the
    point, and ``host`` names the dispatcher that observed the failure.
    """

    index: int
    params: Mapping[str, Any]
    error: str
    traceback: str = ""
    attempts: int = 1
    host: str = ""


class SweepFailure(RuntimeError):
    """Strict-mode sweep outcome: one or more points failed.

    Raised only after every point has been driven to a terminal state, so
    ``errors`` lists every failed point (not just the first) and all
    successful points are already in the cache — re-running the sweep
    recomputes only the failures. ``telemetry`` carries the interrupted
    sweep's counters for observability.
    """

    def __init__(
        self,
        errors: Sequence[SweepError],
        total: int,
        telemetry: Optional[SweepTelemetry] = None,
    ) -> None:
        self.errors = list(errors)
        self.total = int(total)
        self.telemetry = telemetry
        first = self.errors[0] if self.errors else None
        detail = (
            f"; first: {first.error} at {dict(first.params)}" if first else ""
        )
        super().__init__(
            f"{len(self.errors)} of {self.total} sweep points failed"
            f"{detail} (completed points stay in the cache when one is "
            "attached; re-run to resume)"
        )


class SweepResult:
    """The collected points of one grid sweep.

    ``telemetry`` (when present) carries the executor's per-point timings
    and cache counters; it is observational and deliberately excluded
    from any equality comparison over ``points``.

    ``errors`` lists the points that failed under ``on_error="keep-going"``
    (always empty in strict mode, which raises :class:`SweepFailure`
    instead); failed points are absent from ``points`` but the surviving
    points keep canonical grid order.
    """

    def __init__(
        self,
        param_names: Sequence[str],
        points: List[SweepPoint],
        telemetry: Optional[SweepTelemetry] = None,
        errors: Optional[List[SweepError]] = None,
    ) -> None:
        self.param_names = list(param_names)
        self.points = points
        self.telemetry = telemetry
        self.errors: List[SweepError] = list(errors or [])

    def __len__(self) -> int:
        return len(self.points)

    @property
    def ok(self) -> bool:
        """Whether every grid point produced metrics."""
        return not self.errors

    # ------------------------------------------------------------------
    def metric_names(self) -> List[str]:
        if not self.points:
            return []
        return sorted(self.points[0].metrics)

    def where(self, **conditions: Any) -> List[SweepPoint]:
        """Points whose parameters match every condition."""
        return [
            point
            for point in self.points
            if all(point.params.get(k) == v for k, v in conditions.items())
        ]

    def series(self, x_param: str, metric: str, **fixed: Any) -> List[Tuple[Any, float]]:
        """(x, metric) pairs along one parameter, other params fixed."""
        if x_param not in self.param_names:
            raise KeyError(f"unknown parameter {x_param!r}")
        rows = [
            (point.params[x_param], point.metrics[metric])
            for point in self.where(**fixed)
        ]
        rows.sort(key=lambda pair: pair[0])
        return rows

    def pivot(
        self, row_param: str, col_param: str, metric: str
    ) -> Dict[Any, Dict[Any, float]]:
        """row value → {column value → metric} (a 2-D slice)."""
        table: Dict[Any, Dict[Any, float]] = {}
        for point in self.points:
            row = point.params[row_param]
            col = point.params[col_param]
            table.setdefault(row, {})[col] = point.metrics[metric]
        return table

    def best(self, metric: str, maximize: bool = True) -> SweepPoint:
        """The point with the extreme value of ``metric``."""
        if not self.points:
            raise ValueError("empty sweep")
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p.metrics[metric])

    def rows(self) -> List[List[Any]]:
        """Header row + one row per point (for `reporting.format_table`)."""
        header: List[Any] = list(self.param_names) + self.metric_names()
        out: List[List[Any]] = [header]
        for point in self.points:
            out.append(
                [point.params[name] for name in self.param_names]
                + [point.metrics[name] for name in self.metric_names()]
            )
        return out
