"""Pluggable sweep execution backends.

One grid, three ways to drive it, selected by ``grid_sweep(backend=...)``:

- ``serial`` — the inline loop (default for ``workers <= 1``);
- ``process-pool`` — fan pending points over a local
  ``ProcessPoolExecutor`` (default for ``workers >= 2``);
- ``shared-dir`` — N independent dispatcher processes (possibly on
  different hosts) claim pending points through atomic claim files next
  to the shared :class:`~repro.sweep.cache.SweepCache` entries, compute
  them, and publish results through the cache. Every dispatcher returns
  the full, identical, canonical-order result.

All backends run every point through the same bounded-retry wrapper and
report outcomes — success or structured failure — through the sink the
executor provides; no backend lets one raising runner abort the sweep or
discard in-flight results.
"""

from __future__ import annotations

import abc
import concurrent.futures
import dataclasses
import time
import traceback as traceback_module
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from repro.sweep.cache import SweepCache
from repro.sweep.claims import ClaimStore

#: Runner signature: ``runner(**params[, seed=...]) -> {metric: value}``.
Runner = Callable[..., Mapping[str, float]]


@dataclasses.dataclass(frozen=True)
class PointJob:
    """One pending grid point handed to a backend."""

    index: int
    params: Dict[str, Any]
    seed: Optional[int]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-point retry/backoff applied by every backend.

    A point is attempted ``1 + max_retries`` times; attempt ``n`` waits
    ``backoff_s * 2**(n-1)`` seconds first (wall clock — retries exist for
    flaky infrastructure, not simulation time).
    """

    max_retries: int = 0
    backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")


@dataclasses.dataclass(frozen=True)
class PointOutcome:
    """Terminal state of one point's execution: metrics or a captured error."""

    metrics: Optional[Dict[str, float]]
    seconds: float
    attempts: int
    error: Optional[str] = None
    traceback: str = ""

    @property
    def ok(self) -> bool:
        return self.metrics is not None


def execute_point(
    runner: Runner,
    params: Mapping[str, Any],
    seed: Optional[int],
    policy: RetryPolicy = RetryPolicy(),
) -> PointOutcome:
    """Run one grid point under the retry policy; never raises.

    Module-level so a ``ProcessPoolExecutor`` can pickle it; the timing is
    taken inside the worker (summed over attempts), so it measures
    compute, not queueing. Exceptions are captured as strings because the
    exception object itself may not survive the pickle boundary back to
    the dispatcher.
    """
    kwargs = dict(params)
    if seed is not None:
        kwargs["seed"] = seed
    attempts = 0
    seconds = 0.0
    error = ""
    trace = ""
    while attempts <= policy.max_retries:
        if attempts and policy.backoff_s:
            time.sleep(policy.backoff_s * (2 ** (attempts - 1)))
        attempts += 1
        started = time.perf_counter()
        try:
            metrics = dict(runner(**kwargs))
        except Exception as exc:
            seconds += time.perf_counter() - started
            error = f"{type(exc).__name__}: {exc}"
            trace = traceback_module.format_exc()
            continue
        seconds += time.perf_counter() - started
        return PointOutcome(metrics=metrics, seconds=seconds, attempts=attempts)
    return PointOutcome(
        metrics=None, seconds=seconds, attempts=attempts,
        error=error, traceback=trace,
    )


class PointSink(abc.ABC):
    """Where backends report each point's terminal state (executor-owned)."""

    @abc.abstractmethod
    def complete(
        self,
        job: PointJob,
        metrics: Mapping[str, float],
        seconds: float,
        attempts: int = 1,
        from_cache: bool = False,
    ) -> None:
        """One point succeeded (computed, or served from the shared cache)."""

    @abc.abstractmethod
    def fail(self, job: PointJob, outcome: PointOutcome, host: str = "") -> None:
        """One point exhausted its attempts; record the structured error."""

    @property
    @abc.abstractmethod
    def claim_counters(self) -> Any:
        """The live telemetry object (for claim-contention counters)."""


class SweepBackend(abc.ABC):
    """Executes a batch of pending grid points and reports via the sink."""

    #: Telemetry mode string ("serial", "process-pool", "shared-dir").
    name: str = "?"
    #: Worker count reported to telemetry.
    workers: int = 1
    #: Whether the backend itself publishes computed points to the cache
    #: (shared-dir must publish *before* releasing the claim; the others
    #: leave it to the executor).
    publishes_to_cache: bool = False

    @abc.abstractmethod
    def execute(
        self,
        jobs: Sequence[PointJob],
        runner: Runner,
        policy: RetryPolicy,
        sink: PointSink,
    ) -> None:
        """Drive every job to a terminal state (complete or fail)."""


class SerialBackend(SweepBackend):
    """The inline loop: one point after another in this process."""

    name = "serial"
    workers = 1

    def execute(self, jobs, runner, policy, sink):
        for job in jobs:
            outcome = execute_point(runner, job.params, job.seed, policy)
            if outcome.ok:
                sink.complete(job, outcome.metrics, outcome.seconds,
                              outcome.attempts)
            else:
                sink.fail(job, outcome)


class ProcessPoolBackend(SweepBackend):
    """Local fan-out over a ``ProcessPoolExecutor``.

    The runner must be picklable (a module-level function or a
    ``functools.partial`` over one). A point whose worker dies — or whose
    crash breaks the pool — becomes a structured failure for that point;
    every already-finished point keeps its result.
    """

    name = "process-pool"

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError(f"process-pool needs workers >= 2, got {workers}")
        self.workers = int(workers)

    def execute(self, jobs, runner, policy, sink):
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers
        ) as pool:
            futures = {
                pool.submit(execute_point, runner, job.params, job.seed, policy):
                    job
                for job in jobs
            }
            for future in concurrent.futures.as_completed(futures):
                job = futures[future]
                try:
                    outcome = future.result()
                except Exception as exc:
                    # worker or pool death (e.g. BrokenProcessPool): this
                    # point failed, the rest of the loop still collects
                    # every other future's state
                    outcome = PointOutcome(
                        metrics=None, seconds=0.0, attempts=1,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                if outcome.ok:
                    sink.complete(job, outcome.metrics, outcome.seconds,
                                  outcome.attempts)
                else:
                    sink.fail(job, outcome)


class SharedDirBackend(SweepBackend):
    """Multi-dispatcher execution over one shared cache directory.

    Each dispatcher loops over the still-unresolved points: serve it if
    the cache has it, claim-and-compute it if the claim file is free (or
    stale — takeover), otherwise leave it for the next pass and poll.
    The loop ends when every point has metrics or a failure marker, so
    every dispatcher returns the complete result. See
    :mod:`repro.sweep.claims` for the on-disk protocol.
    """

    name = "shared-dir"
    publishes_to_cache = True

    def __init__(
        self,
        cache: SweepCache,
        claim_ttl_s: float = 120.0,
        poll_interval_s: float = 0.05,
        host_id: Optional[str] = None,
    ) -> None:
        if poll_interval_s <= 0:
            raise ValueError(
                f"poll interval must be positive, got {poll_interval_s}"
            )
        self.cache = cache
        self.claims = ClaimStore(cache.root, ttl_s=claim_ttl_s, host_id=host_id)
        self.poll_interval_s = float(poll_interval_s)
        self.started_at = 0.0

    def execute(self, jobs, runner, policy, sink):
        self.started_at = time.time()
        telemetry = sink.claim_counters
        contended: set = set()
        remaining = list(jobs)
        while remaining:
            progressed = False
            deferred = []
            for job in remaining:
                key = self.cache.key_for(job.params, job.seed)
                stored = self.cache.peek(job.params, job.seed)
                if stored is not None:
                    # published by another dispatcher since our precheck
                    sink.complete(job, stored, 0.0, attempts=0,
                                  from_cache=True)
                    progressed = True
                    continue
                marker = self.read_failure(key)
                if marker is not None:
                    sink.fail(
                        job,
                        PointOutcome(
                            metrics=None,
                            seconds=0.0,
                            attempts=int(marker.get("attempts", 1)),
                            error=str(marker.get("error", "?")),
                            traceback=str(marker.get("traceback", "")),
                        ),
                        host=str(marker.get("host", "")),
                    )
                    progressed = True
                    continue
                grant = self.claims.acquire(key)
                if grant is None:
                    if key not in contended:
                        contended.add(key)
                        telemetry.claim_contention += 1
                    deferred.append(job)
                    continue
                if grant == "stolen":
                    telemetry.claims_stolen += 1
                # The previous holder publishes before releasing, so the
                # point may have been published between our peek above and
                # this acquire — re-check now that we hold the claim, or
                # we would recompute a finished point.
                stored = self.cache.peek(job.params, job.seed)
                if stored is not None:
                    self.claims.release(key)
                    sink.complete(job, stored, 0.0, attempts=0,
                                  from_cache=True)
                    progressed = True
                    continue
                try:
                    outcome = execute_point(runner, job.params, job.seed,
                                            policy)
                    if outcome.ok:
                        # publish before releasing the claim so no other
                        # dispatcher can ever find the point unclaimed
                        # *and* unpublished
                        self.cache.put(job.params, job.seed, outcome.metrics)
                        sink.complete(job, outcome.metrics, outcome.seconds,
                                      outcome.attempts)
                    else:
                        self.claims.publish_error(
                            key, outcome.error or "?", outcome.traceback,
                            outcome.attempts,
                        )
                        sink.fail(job, outcome, host=self.claims.host_id)
                finally:
                    self.claims.release(key)
                progressed = True
            remaining = deferred
            if remaining and not progressed:
                time.sleep(self.poll_interval_s)

    def read_failure(self, key: str) -> Optional[Dict[str, Any]]:
        """This sweep's failure marker for ``key``, clearing stale ones.

        Markers older than this dispatcher's start are leftovers of a
        previous run: they are removed so the point is retried, which is
        what makes an interrupted or partially-failed sweep resumable.
        """
        marker = self.claims.read_error(key)
        if marker is None:
            return None
        if float(marker.get("failed_at", 0.0)) < self.started_at:
            self.claims.clear_error(key)
            return None
        return marker


def resolve_backend(
    backend: Optional[object],
    workers: int,
    cache: Optional[SweepCache],
    claim_ttl_s: float = 120.0,
    host_id: Optional[str] = None,
) -> SweepBackend:
    """Turn the ``grid_sweep`` backend spec into a backend instance.

    ``None`` keeps the historical behavior: serial for ``workers <= 1``,
    process-pool otherwise. A string picks a named backend; an existing
    :class:`SweepBackend` instance passes through unchanged.
    """
    if isinstance(backend, SweepBackend):
        return backend
    if backend is None:
        backend = "process-pool" if workers > 1 else "serial"
    if backend == "serial":
        return SerialBackend()
    if backend == "process-pool":
        return ProcessPoolBackend(max(2, workers))
    if backend == "shared-dir":
        if cache is None:
            raise ValueError(
                "shared-dir dispatch needs a shared cache: pass cache= or "
                "cache_dir="
            )
        return SharedDirBackend(cache, claim_ttl_s=claim_ttl_s,
                                host_id=host_id)
    raise ValueError(
        f"unknown sweep backend {backend!r}; "
        "expected 'serial', 'process-pool', or 'shared-dir'"
    )
