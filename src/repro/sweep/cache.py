"""On-disk cache of finished sweep points.

The cache key covers every parameter value, the point's seed, and a
code-version tag — it identifies a point *globally*, so a cache directory
shared between machines doubles as the result-exchange substrate of the
``shared-dir`` dispatch backend (:mod:`repro.sweep.backends`): any
dispatcher that computes a point publishes it here, and every other
dispatcher serves it from disk instead of recomputing.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Mapping, Optional

#: Code-version tag baked into every cache key. Bump when runner or
#: simulator semantics change in a way that invalidates stored metrics.
CODE_VERSION_TAG = "repro-sweep-v1"


class SweepCache:
    """On-disk cache of finished sweep points.

    Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the BLAKE2b
    hex digest of the canonical JSON of ``{"params", "seed", "tag"}``.
    The tag defaults to :data:`CODE_VERSION_TAG`; pass your own
    ``version_tag`` to segregate (and thereby invalidate) results across
    incompatible runner versions. Because the key covers every parameter
    value and the seed, any config change misses the cache naturally —
    stale entries are never *read*, only left behind.

    Entries store the params and metrics as JSON, written atomically
    (tmp file + ``os.replace``) so a killed sweep never leaves a
    half-written entry behind. Claim files of the shared-dir dispatch
    backend live next to the entries (``<key>.claim`` / ``<key>.error``)
    and are never mistaken for results.
    """

    def __init__(self, root: str, version_tag: str = CODE_VERSION_TAG) -> None:
        self.root = str(root)
        self.version_tag = version_tag
        self.hits = 0
        self.misses = 0
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    def key_for(self, params: Mapping[str, Any], seed: Optional[int] = None) -> str:
        payload = json.dumps(
            {"params": dict(params), "seed": seed, "tag": self.version_tag},
            sort_keys=True,
            default=repr,
        )
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()

    def path_for(self, params: Mapping[str, Any], seed: Optional[int] = None) -> str:
        key = self.key_for(params, seed)
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------
    def get(
        self, params: Mapping[str, Any], seed: Optional[int] = None
    ) -> Optional[Dict[str, float]]:
        """Stored metrics for ``(params, seed)``, or ``None`` on a miss."""
        metrics = self.peek(params, seed)
        if metrics is None:
            self.misses += 1
        else:
            self.hits += 1
        return metrics

    def peek(
        self, params: Mapping[str, Any], seed: Optional[int] = None
    ) -> Optional[Dict[str, float]]:
        """Like :meth:`get` but without moving the hit/miss counters.

        The shared-dir dispatcher polls the cache while waiting for
        points claimed by other hosts; those polls are not lookups the
        sweep requested, so they must not distort the counters the
        telemetry reconciles against.
        """
        path = self.path_for(params, seed)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        return dict(entry["metrics"])

    def put(
        self,
        params: Mapping[str, Any],
        seed: Optional[int],
        metrics: Mapping[str, float],
    ) -> str:
        """Store one finished point; returns the entry's path."""
        path = self.path_for(params, seed)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "params": dict(params),
            "seed": seed,
            "tag": self.version_tag,
            "metrics": dict(metrics),
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True, default=repr)
        os.replace(tmp, path)
        return path
