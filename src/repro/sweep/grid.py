"""The grid-sweep executor: combos, seeds, cache precheck, dispatch.

``grid_sweep`` owns everything backend-independent — enumerating the
grid in canonical order, deriving per-point seeds, serving cached points,
booking telemetry, and assembling the :class:`SweepResult` — and hands
the pending points to whichever :class:`~repro.sweep.backends.SweepBackend`
was selected. Failures never abort the dispatch loop: every point reaches
a terminal state, and strict mode raises :class:`SweepFailure` only after
the fact (with every completed point already in the cache).
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.metrics import SweepTelemetry
from repro.sim.rng import spawn
from repro.sweep.backends import (
    PointJob,
    PointOutcome,
    PointSink,
    RetryPolicy,
    SweepBackend,
    resolve_backend,
)
from repro.sweep.cache import CODE_VERSION_TAG, SweepCache
from repro.sweep.claims import publish_manifest
from repro.sweep.result import SweepError, SweepFailure, SweepPoint, SweepResult


def _check_metrics(
    metrics: Mapping[str, float],
    expected: Optional[frozenset],
    params: Mapping[str, Any],
) -> frozenset:
    """Enforce one metric set across all points (same error as ever)."""
    names = frozenset(metrics)
    if expected is not None and names != expected:
        raise ValueError(
            f"runner returned inconsistent metrics at {dict(params)}: "
            f"{sorted(names)} vs {sorted(expected)}"
        )
    return names


class _ExecutorSink(PointSink):
    """Books backend outcomes into results, cache, telemetry, errors."""

    def __init__(
        self,
        results: List[Optional[Dict[str, float]]],
        errors: List[SweepError],
        cache: Optional[SweepCache],
        store_on_complete: bool,
        telemetry: SweepTelemetry,
        progress: Optional[Callable[[SweepTelemetry], None]],
    ) -> None:
        self.results = results
        self.errors = errors
        self.cache = cache
        self.store_on_complete = store_on_complete
        self.telemetry = telemetry
        self.progress = progress

    def complete(self, job, metrics, seconds, attempts=1, from_cache=False):
        self.results[job.index] = dict(metrics)
        if self.cache is not None and self.store_on_complete and not from_cache:
            self.cache.put(job.params, job.seed, metrics)
        cached: Optional[bool]
        if self.cache is None:
            cached = None  # no cache attached: neither counter moves
        else:
            cached = bool(from_cache)
        self.telemetry.record(
            job.index, job.params, seconds, cached=cached, attempts=attempts
        )
        if self.progress is not None:
            self.progress(self.telemetry)

    def fail(self, job, outcome: PointOutcome, host: str = "") -> None:
        self.errors.append(SweepError(
            index=job.index,
            params=dict(job.params),
            error=outcome.error or "?",
            traceback=outcome.traceback,
            attempts=outcome.attempts,
            host=host or self.telemetry.host,
        ))
        self.telemetry.record_error(job.index, job.params, outcome.attempts)
        if self.progress is not None:
            self.progress(self.telemetry)

    @property
    def claim_counters(self) -> SweepTelemetry:
        return self.telemetry


def grid_sweep(
    param_grid: Mapping[str, Sequence[Any]],
    runner: Callable[..., Mapping[str, float]],
    *,
    workers: Optional[int] = None,
    base_seed: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    cache_dir: Optional[str] = None,
    version_tag: Optional[str] = None,
    progress: Optional[Callable[[SweepTelemetry], None]] = None,
    backend: Optional[object] = None,
    max_retries: int = 0,
    retry_backoff_s: float = 0.0,
    on_error: str = "raise",
    claim_ttl_s: float = 120.0,
    host_id: Optional[str] = None,
) -> SweepResult:
    """Run ``runner(**params)`` for every combination in the grid.

    The runner must return a mapping of metric name → value; the metric
    set must be identical across points.

    ``workers``: ``None``/``0``/``1`` run the serial inline loop;
    ``workers >= 2`` fans misses out over a ``ProcessPoolExecutor`` of
    that size (the runner must then be picklable — a module-level
    function or a ``functools.partial`` over one).

    ``base_seed``: when set, each point's runner is additionally called
    with ``seed=spawn(base_seed, point_index)`` so parallel and serial
    runs see identical randomness. The grid must not itself contain a
    ``seed`` axis in that case.

    ``cache``/``cache_dir``: an explicit :class:`SweepCache`, or a
    directory to build one in (with ``version_tag`` overriding the
    default code-version tag). Cached points are served without invoking
    the runner; fresh points are stored after they complete.

    ``progress``: optional callback invoked with the live
    :class:`~repro.metrics.SweepTelemetry` after each point completes.

    ``backend``: ``None`` (infer from ``workers``), ``"serial"``,
    ``"process-pool"``, ``"shared-dir"`` (multi-host dispatch through a
    shared ``cache_dir`` — several dispatcher processes may run the same
    call concurrently and each returns the full identical result), or a
    :class:`~repro.sweep.backends.SweepBackend` instance.

    ``max_retries``/``retry_backoff_s``: bounded per-point retry with
    exponential backoff before a point is declared failed.

    ``on_error``: ``"raise"`` (strict — raise :class:`SweepFailure` after
    the whole grid has been driven; completed points stay cached, so a
    re-run resumes) or ``"keep-going"`` (failed points surface as
    ``SweepResult.errors`` and the surviving points are returned).

    ``claim_ttl_s``/``host_id``: shared-dir dispatch knobs — seconds
    before another dispatcher may steal an abandoned claim, and the
    identity stamped into claims and telemetry (default ``hostname:pid``).

    Point order in the result is always canonical grid order
    (``itertools.product`` over the grid as given), independent of
    execution order.
    """
    if not param_grid:
        raise ValueError("parameter grid must not be empty")
    names = list(param_grid)
    for name, values in param_grid.items():
        if not values:
            raise ValueError(f"parameter {name!r} has no values")
    if base_seed is not None and "seed" in param_grid:
        raise ValueError(
            "param_grid already has a 'seed' axis; drop it or omit base_seed"
        )
    if on_error not in ("raise", "keep-going"):
        raise ValueError(
            f"on_error must be 'raise' or 'keep-going', got {on_error!r}"
        )
    if cache is None and cache_dir is not None:
        cache = SweepCache(cache_dir, version_tag or CODE_VERSION_TAG)

    executor = resolve_backend(
        backend, int(workers) if workers else 0, cache,
        claim_ttl_s=claim_ttl_s, host_id=host_id,
    )
    policy = RetryPolicy(max_retries=max_retries, backoff_s=retry_backoff_s)

    combos: List[Dict[str, Any]] = [
        dict(zip(names, combo))
        for combo in itertools.product(*(param_grid[name] for name in names))
    ]
    seeds: List[Optional[int]] = [
        spawn(base_seed, index) if base_seed is not None else None
        for index in range(len(combos))
    ]

    telemetry = SweepTelemetry(
        total=len(combos),
        mode=executor.name,
        workers=executor.workers,
        host=host_id,
    )
    if executor.publishes_to_cache and cache is not None:
        publish_manifest(
            cache.root, names, len(combos), cache.version_tag, base_seed,
            host_id=telemetry.host,
        )
    wall_started = time.perf_counter()

    results: List[Optional[Dict[str, float]]] = [None] * len(combos)
    errors: List[SweepError] = []
    pending: List[PointJob] = []
    for index, params in enumerate(combos):
        if cache is not None:
            lookup_started = time.perf_counter()
            stored = cache.get(params, seeds[index])
            if stored is not None:
                results[index] = stored
                telemetry.record(
                    index, params, time.perf_counter() - lookup_started,
                    cached=True, attempts=0,
                )
                if progress is not None:
                    progress(telemetry)
                continue
        pending.append(PointJob(index=index, params=params, seed=seeds[index]))

    sink = _ExecutorSink(
        results=results,
        errors=errors,
        cache=cache,
        store_on_complete=not executor.publishes_to_cache,
        telemetry=telemetry,
        progress=progress,
    )
    if pending:
        executor.execute(pending, runner, policy, sink)

    telemetry.wall_seconds = time.perf_counter() - wall_started
    errors.sort(key=lambda e: e.index)

    if errors and on_error == "raise":
        raise SweepFailure(errors, total=len(combos), telemetry=telemetry)

    points: List[SweepPoint] = []
    expected: Optional[frozenset] = None
    failed_indices = {error.index for error in errors}
    for index, (params, metrics) in enumerate(zip(combos, results)):
        if metrics is None:
            assert index in failed_indices, (
                f"point {index} has neither metrics nor a failure record"
            )
            continue
        expected = _check_metrics(metrics, expected, params)
        points.append(SweepPoint(params=params, metrics=metrics))
    return SweepResult(names, points, telemetry=telemetry, errors=errors)
