"""Claim-file protocol for multi-host sweep dispatch, plus the status scan.

The ``shared-dir`` backend lets N independent dispatcher processes
(possibly on different hosts) drive one grid through one shared cache
directory. Coordination is pure filesystem, no server:

- **Claims.** Before computing a point, a dispatcher creates
  ``<root>/<key[:2]>/<key>.claim`` with ``os.open(..., O_CREAT|O_EXCL)``
  — an atomic test-and-set on any POSIX filesystem (including NFS v3+
  for local-directory layouts like this one, where the claim and the
  result share a directory). Exactly one dispatcher wins; the others
  poll the cache until the winner publishes the result, then serve it
  from disk. The claim carries the holder's ``hostname:pid`` and wall
  time so the status view can attribute in-flight points.
- **Stale-claim takeover.** A dispatcher that dies mid-point leaves its
  claim behind. Claims older than the TTL (claim-file mtime vs. wall
  clock) are stolen: the stale file is unlinked and the O_EXCL create
  retried, so at most one thief wins the re-claim race.
- **Failure markers.** A point that exhausts its retry budget publishes
  ``<key>.error`` (atomic tmp+rename) so other dispatchers in the same
  sweep record the failure instead of recomputing it. Markers older
  than a dispatcher's own start time are treated as leftovers of a
  previous run and cleared — re-running a failed sweep retries exactly
  the failed points (completed points still hit the cache).
- **Manifest.** The first dispatcher to start a given grid drops a
  ``manifest-<gridkey>.json`` describing it (param names, total points,
  version tag), which lets ``repro-sim grid --status`` report progress
  as done/total rather than bare counts.

Everything here uses wall-clock time (claim coordination spans
processes and hosts), never the simulation clock.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import json
import os
import time
from typing import Any, Dict, List, Mapping, Optional

from repro.metrics import default_host_id

#: Default seconds after which an untouched claim is considered abandoned.
DEFAULT_CLAIM_TTL_S = 120.0


class ClaimStore:
    """Atomic per-point claim files next to the cache entries of ``root``."""

    def __init__(
        self,
        root: str,
        ttl_s: float = DEFAULT_CLAIM_TTL_S,
        host_id: Optional[str] = None,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"claim TTL must be positive, got {ttl_s}")
        self.root = str(root)
        self.ttl_s = float(ttl_s)
        self.host_id = host_id or default_host_id()
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    def claim_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.claim")

    def error_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.error")

    # ------------------------------------------------------------------
    def acquire(self, key: str) -> Optional[str]:
        """Try to claim ``key``; returns ``"fresh"``, ``"stolen"``, or ``None``.

        ``None`` means another dispatcher holds a live claim. ``"stolen"``
        means the previous claim had outlived the TTL and was taken over.
        """
        if self._create(key):
            return "fresh"
        if self.is_stale(key):
            # unlink-then-recreate: several thieves may race the unlink
            # (missing_ok absorbs the losers) but O_EXCL picks one winner
            try:
                os.unlink(self.claim_path(key))
            except FileNotFoundError:
                pass
            if self._create(key):
                return "stolen"
        return None

    def _create(self, key: str) -> bool:
        path = self.claim_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError as exc:
            if exc.errno == errno.EEXIST:
                return False
            raise
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump({"host": self.host_id, "claimed_at": time.time()}, handle)
        return True

    def release(self, key: str) -> None:
        try:
            os.unlink(self.claim_path(key))
        except FileNotFoundError:
            pass

    def holder(self, key: str) -> Optional[Dict[str, Any]]:
        """The live claim's ``{"host", "claimed_at"}``, or ``None``."""
        try:
            with open(self.claim_path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def is_claimed(self, key: str) -> bool:
        return os.path.exists(self.claim_path(key))

    def is_stale(self, key: str) -> bool:
        """Whether the claim on ``key`` has outlived the TTL (False if gone)."""
        try:
            age = time.time() - os.stat(self.claim_path(key)).st_mtime
        except FileNotFoundError:
            return False
        return age > self.ttl_s

    # ------------------------------------------------------------------
    # failure markers
    # ------------------------------------------------------------------
    def publish_error(
        self, key: str, error: str, traceback: str = "", attempts: int = 1
    ) -> str:
        """Atomically record that ``key`` failed terminally on this host."""
        path = self.error_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "host": self.host_id,
            "failed_at": time.time(),
            "error": error,
            "traceback": traceback,
            "attempts": int(attempts),
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        return path

    def read_error(self, key: str) -> Optional[Dict[str, Any]]:
        """The failure marker for ``key``, or ``None``."""
        try:
            with open(self.error_path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def clear_error(self, key: str) -> None:
        try:
            os.unlink(self.error_path(key))
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# grid manifest
# ----------------------------------------------------------------------
def grid_fingerprint(
    param_names: List[str], total: int, version_tag: str, base_seed: Optional[int]
) -> str:
    """Stable id of one grid shape, for the manifest filename."""
    payload = json.dumps(
        {
            "param_names": list(param_names),
            "total": int(total),
            "tag": version_tag,
            "base_seed": base_seed,
        },
        sort_keys=True,
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


def publish_manifest(
    root: str,
    param_names: List[str],
    total: int,
    version_tag: str,
    base_seed: Optional[int],
    host_id: Optional[str] = None,
) -> str:
    """Drop the grid's manifest into ``root`` (first dispatcher wins)."""
    fingerprint = grid_fingerprint(param_names, total, version_tag, base_seed)
    path = os.path.join(root, f"manifest-{fingerprint}.json")
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError as exc:
        if exc.errno == errno.EEXIST:
            return path
        raise
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "param_names": list(param_names),
                "total": int(total),
                "tag": version_tag,
                "base_seed": base_seed,
                "host": host_id or default_host_id(),
                "started_at": time.time(),
            },
            handle,
            sort_keys=True,
        )
    return path


# ----------------------------------------------------------------------
# status scan (`repro-sim grid --status <cache_dir>`)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ClaimInfo:
    """One in-flight (or abandoned) point claim found by the status scan."""

    key: str
    host: str
    age_s: float
    stale: bool


@dataclasses.dataclass(frozen=True)
class ErrorInfo:
    """One published point-failure marker found by the status scan."""

    key: str
    host: str
    error: str
    attempts: int
    age_s: float


@dataclasses.dataclass(frozen=True)
class SweepStatus:
    """Snapshot of a (possibly distributed) sweep's shared cache directory."""

    root: str
    results: int
    claims: List[ClaimInfo]
    errors: List[ErrorInfo]
    manifests: List[Dict[str, Any]]

    @property
    def active_claims(self) -> List[ClaimInfo]:
        return [c for c in self.claims if not c.stale]

    @property
    def stale_claims(self) -> List[ClaimInfo]:
        return [c for c in self.claims if c.stale]

    @property
    def total(self) -> Optional[int]:
        """Grid size per the manifest(s), when exactly one grid is known."""
        totals = {int(m["total"]) for m in self.manifests if "total" in m}
        return totals.pop() if len(totals) == 1 else None

    def summary(self) -> str:
        """One-line progress report of the directory's sweep state."""
        done = (
            f"{self.results}/{self.total}" if self.total is not None
            else f"{self.results}"
        )
        return (
            f"status: {done} points done, "
            f"{len(self.active_claims)} in flight, "
            f"{len(self.stale_claims)} stale claims, "
            f"{len(self.errors)} failed"
        )


def sweep_status(
    root: str, ttl_s: float = DEFAULT_CLAIM_TTL_S
) -> SweepStatus:
    """Scan a shared cache directory for a distributed sweep's progress.

    Counts published results, reads every claim file (splitting them into
    active and stale against ``ttl_s``) and failure marker, and collects
    any grid manifests — the data behind ``repro-sim grid --status``.
    """
    results = 0
    claims: List[ClaimInfo] = []
    errors: List[ErrorInfo] = []
    manifests: List[Dict[str, Any]] = []
    now = time.time()
    root = str(root)
    if not os.path.isdir(root):
        raise FileNotFoundError(f"no such sweep cache directory: {root!r}")
    for dirpath, __, filenames in os.walk(root):
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            if name.startswith("manifest-") and name.endswith(".json"):
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        manifests.append(json.load(handle))
                except (OSError, json.JSONDecodeError):
                    pass
            elif name.endswith(".claim"):
                key = name[: -len(".claim")]
                try:
                    age = now - os.stat(path).st_mtime
                except FileNotFoundError:
                    continue  # released between listing and stat
                holder: Dict[str, Any] = {}
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        holder = json.load(handle)
                except (OSError, json.JSONDecodeError):
                    pass
                claims.append(ClaimInfo(
                    key=key,
                    host=str(holder.get("host", "?")),
                    age_s=max(0.0, age),
                    stale=age > ttl_s,
                ))
            elif name.endswith(".error"):
                key = name[: -len(".error")]
                payload: Dict[str, Any] = {}
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        payload = json.load(handle)
                except (OSError, json.JSONDecodeError):
                    pass
                errors.append(ErrorInfo(
                    key=key,
                    host=str(payload.get("host", "?")),
                    error=str(payload.get("error", "?")),
                    attempts=int(payload.get("attempts", 1)),
                    age_s=max(0.0, now - float(payload.get("failed_at", now))),
                ))
            elif name.endswith(".json") and ".tmp." not in name:
                results += 1
    return SweepStatus(
        root=root, results=results, claims=claims, errors=errors,
        manifests=manifests,
    )
