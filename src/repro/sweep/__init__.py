"""Parameter-sweep utilities: grids, pluggable executors, a result cache.

Define a grid of named parameters and a runner mapping one parameter
combination to a dict of metrics, and get a :class:`SweepResult` that can
slice, tabulate, and pivot:

    sweep = grid_sweep(
        {"distance_m": [1, 5, 10], "periods": [1, 4, 7]},
        lambda distance_m, periods: {"saved": run(distance_m, periods)},
    )
    sweep.pivot("distance_m", "periods", "saved")

Execution runs through a pluggable :class:`SweepBackend` — ``serial``
(the default, and the fallback when ``workers <= 1``), ``process-pool``
(a local ``ProcessPoolExecutor`` fan-out via the ``workers=`` knob), or
``shared-dir`` (N independent dispatcher processes, possibly on
different hosts, claiming points through atomic claim files next to a
shared cache directory). Four guarantees make every path safe to adopt:

- **Determinism.** With ``base_seed=`` set, every point's runner receives
  ``seed=spawn(base_seed, point_index)`` (:func:`repro.sim.rng.spawn`),
  which depends only on the point's position in the grid — so serial,
  process-pool, and shared-dir sweeps produce identical
  :class:`SweepPoint` lists, point for point, on every host.
- **Caching.** With ``cache=``/``cache_dir=`` set, finished points are
  stored on disk keyed by (params hash, seed, code-version tag) — see
  :class:`SweepCache` — so re-running a grid only computes changed points,
  and an interrupted sweep resumes from what it already finished.
- **Fault tolerance.** Every point runs under bounded retry/backoff and
  reaches a terminal state; one raising runner can no longer abort the
  sweep or discard in-flight results. Failed points surface as a
  structured :class:`SweepError` list (``on_error="keep-going"``) or a
  post-hoc :class:`SweepFailure` (strict mode, the default).
- **Observability.** Every sweep records per-point wall-clock timings,
  attempts, retry/error and claim-contention counters, and the
  dispatcher's host identity in a
  :class:`repro.metrics.SweepTelemetry`, attached as
  ``SweepResult.telemetry``; :func:`sweep_status` renders the same view
  for a distributed sweep in flight (``repro-sim grid --status DIR``).

Parallel runners must be picklable: module-level functions (or
``functools.partial`` over them), e.g. the canned runners in
:mod:`repro.scenarios`. Closures and lambdas only work serially.
"""

from repro.sweep.backends import (
    PointJob,
    PointOutcome,
    PointSink,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    SharedDirBackend,
    SweepBackend,
    execute_point,
    resolve_backend,
)
from repro.sweep.cache import CODE_VERSION_TAG, SweepCache
from repro.sweep.claims import (
    DEFAULT_CLAIM_TTL_S,
    ClaimInfo,
    ClaimStore,
    ErrorInfo,
    SweepStatus,
    sweep_status,
)
from repro.sweep.grid import grid_sweep
from repro.sweep.result import (
    SweepError,
    SweepFailure,
    SweepPoint,
    SweepResult,
)

__all__ = [
    "CODE_VERSION_TAG",
    "DEFAULT_CLAIM_TTL_S",
    "ClaimInfo",
    "ClaimStore",
    "ErrorInfo",
    "PointJob",
    "PointOutcome",
    "PointSink",
    "ProcessPoolBackend",
    "RetryPolicy",
    "SerialBackend",
    "SharedDirBackend",
    "SweepBackend",
    "SweepCache",
    "SweepError",
    "SweepFailure",
    "SweepPoint",
    "SweepResult",
    "SweepStatus",
    "execute_point",
    "grid_sweep",
    "resolve_backend",
    "sweep_status",
]
