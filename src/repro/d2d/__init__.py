"""Device-to-Device (D2D) communication substrate.

Models what the framework needs from a D2D radio: peer discovery,
connection establishment (Wi-Fi Direct group-owner negotiation), message
transfer with distance-dependent energy, range-limited links that can
break under mobility, and the technology trade-offs of Sec. IV-A
(Wi-Fi Direct vs. Bluetooth vs. LTE Direct).
"""

from repro.d2d.link import LinkModel, rssi_at, distance_from_rssi
from repro.d2d.base import (
    D2DConnection,
    D2DEndpoint,
    D2DMedium,
    D2DTechnology,
    D2DTransferError,
    PeerInfo,
)
from repro.d2d.wifi_direct import WIFI_DIRECT, GroupOwnerNegotiator
from repro.d2d.bluetooth import BLUETOOTH
from repro.d2d.lte_direct import LTE_DIRECT

__all__ = [
    "LinkModel",
    "rssi_at",
    "distance_from_rssi",
    "D2DConnection",
    "D2DEndpoint",
    "D2DMedium",
    "D2DTechnology",
    "D2DTransferError",
    "PeerInfo",
    "WIFI_DIRECT",
    "GroupOwnerNegotiator",
    "BLUETOOTH",
    "LTE_DIRECT",
]
