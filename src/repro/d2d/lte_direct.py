"""LTE Direct D2D technology model.

Sec. IV-A: "LTE Direct as an innovative D2D technology enabling the
discovery of thousands of devices in the proximity of approximately 500
meters. Nonetheless, many countries ... have not deployed the technique",
so the paper abandons it "for generality consideration".

We model it anyway — very cheap, always-on discovery at long range — but
mark it ``deployed=False``: a :class:`~repro.d2d.base.D2DMedium` refuses it
unless explicitly allowed, mirroring the paper's deployment gate. The
technology-ablation bench opts in to show what the framework would gain.
"""

from __future__ import annotations

from repro.d2d.base import D2DTechnology
from repro.d2d.link import LinkModel

LTE_DIRECT = D2DTechnology(
    name="lte-direct",
    max_range_m=500.0,
    discovery_latency_s=0.5,  # synchronized discovery resources
    connection_latency_s=0.5,
    transfer_latency_s=0.02,
    deployed=False,
    discovery_scale=0.15,  # discovery piggybacks on the LTE frame structure
    connection_scale=0.6,
    tx_scale=0.9,
    rx_scale=0.9,
    link=LinkModel(
        tx_power_dbm=23.0,
        path_loss_at_ref_db=38.0,
        path_loss_exponent=3.2,
        shadowing_sigma_db=3.0,
        sensitivity_dbm=-105.0,
    ),
)
