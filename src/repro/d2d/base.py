"""Technology-generic D2D medium, endpoints and connections.

One :class:`D2DMedium` per simulation models the shared radio environment
for one D2D technology: who can discover whom (range + advertisement),
connection establishment, range-limited transfers with distance-dependent
energy, and link monitoring that breaks connections when devices drift
apart (the failure mode the paper's feedback mechanism exists for).

Energy conventions follow the paper's Table III: the *initiator* of
discovery/connection pays the UE-side charge, the responder the relay-side
charge; a message sender pays the forward charge (distance-scaled, Fig. 12)
and the receiver the receive charge (Table IV slope).
"""

from __future__ import annotations

import dataclasses
import math
import operator
import time
import types
from typing import Any, Callable, Dict, List, Mapping, Optional, Set

from repro.channel.model import ChannelModel
from repro.d2d.link import LinkModel
from repro.energy.model import EnergyModel, EnergyPhase
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.mobility.index import SpatialIndex
from repro.mobility.models import MobilityModel, TrajectoryBatch
from repro.mobility.space import Position, distance_between
from repro.perf import PerfCounters
from repro.sim.engine import PeriodicProcess, Simulator

#: Scan-result ordering key (strongest signal first via ``reverse=True``).
_RSSI_KEY = operator.attrgetter("rssi_dbm")

try:  # numpy powers the vectorized scan path; everything degrades to the
    # scalar hot loop without it, so it stays an optional accelerator.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the kill switch
    _np = None

#: Candidate blocks smaller than this run the scalar loop: the fixed
#: overhead of the numpy calls only pays off once the block is big enough
#: that most candidates fail the range filter in C instead of Python.
_VECTOR_MIN_BLOCK = 24


class D2DTransferError(RuntimeError):
    """Raised for illegal transfer attempts (closed connection, bad peer)."""


@dataclasses.dataclass(frozen=True)
class D2DTechnology:
    """Capabilities and relative energy cost of one D2D technology.

    Energy scales are multipliers applied to the Wi-Fi Direct-calibrated
    base costs in :class:`~repro.energy.profiles.EnergyProfile` (so
    Wi-Fi Direct itself uses 1.0 everywhere).
    """

    name: str
    max_range_m: float
    discovery_latency_s: float
    connection_latency_s: float
    transfer_latency_s: float
    deployed: bool = True  # LTE Direct is modelled but gated (Sec. IV-A)
    discovery_scale: float = 1.0
    connection_scale: float = 1.0
    tx_scale: float = 1.0
    rx_scale: float = 1.0
    link: LinkModel = dataclasses.field(default_factory=LinkModel)


@dataclasses.dataclass(frozen=True, slots=True)
class PeerInfo:
    """What a discovery scan reveals about one nearby peer.

    ``advertisement`` is a **read-only view** of the peer's live service
    record, not a per-scan copy (scans used to deep-copy every record for
    every peer, which dominated dense-crowd scan cost). Consumers that
    need a point-in-time snapshot should take ``dict(peer.advertisement)``
    themselves; attempts to mutate the view raise ``TypeError``, so a
    misbehaving consumer can never corrupt the endpoint's record.
    """

    device_id: str
    rssi_dbm: float
    estimated_distance_m: float
    advertisement: Mapping[str, Any]


class D2DEndpoint:
    """One device's attachment to the D2D medium.

    ``advertisement`` is the small service record other devices see during
    discovery (role, remaining relay capacity, …). ``on_message`` receives
    ``(connection, sender_id, payload, size_bytes)``; ``on_disconnect``
    receives ``(connection, reason)``.
    """

    def __init__(
        self,
        device_id: str,
        mobility: MobilityModel,
        energy: Optional[EnergyModel] = None,
        advertisement: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.device_id = device_id
        self.mobility = mobility
        self.energy = energy
        self.advertisement: Dict[str, Any] = dict(advertisement or {})
        #: Live read-only view of ``advertisement``, shared by every
        #: ``PeerInfo`` naming this endpoint (one proxy per endpoint, not
        #: one per scan result). Stays valid because the record is only
        #: ever mutated in place, never rebound.
        self.advertisement_view: Mapping[str, Any] = types.MappingProxyType(
            self.advertisement
        )
        self.advertising = False
        self.powered_on = True
        #: Time of the last data receive — drives wake coalescing.
        self.last_data_rx_s = float("-inf")
        self.on_message: Optional[Callable[["D2DConnection", str, Any, int], None]] = None
        self.on_disconnect: Optional[Callable[["D2DConnection", str], None]] = None

    def position(self, t: float) -> Position:
        return self.mobility.position(t)

    def charge(
        self, phase: EnergyPhase, uah: float, time_s: float, duration_s: float = 0.0
    ) -> None:
        if self.energy is not None:
            self.energy.charge(phase, uah, time_s=time_s, duration_s=duration_s)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"D2DEndpoint({self.device_id!r}, advertising={self.advertising})"


class D2DConnection:
    """An established point-to-point D2D link.

    ``group_owner_id`` records which side won the Wi-Fi Direct GO
    negotiation (from the advertised ``go_intent`` values; the initiator
    is assumed to be a UE pinning intent 0 unless it advertises
    otherwise), matching the paper's Sec. IV-C setup where relays start at
    intent 15.
    """

    def __init__(
        self,
        medium: "D2DMedium",
        initiator: D2DEndpoint,
        responder: D2DEndpoint,
        established_at_s: float,
    ) -> None:
        self.medium = medium
        self.initiator = initiator
        self.responder = responder
        self.established_at_s = established_at_s
        initiator_intent = int(initiator.advertisement.get("go_intent", 0))
        responder_intent = int(responder.advertisement.get("go_intent", 0))
        self.group_owner_id = (
            initiator.device_id
            if initiator_intent > responder_intent
            else responder.device_id
        )
        self.alive = True
        self.messages_delivered = 0
        self.messages_lost = 0
        self.bytes_transferred = 0
        self._monitor: Optional[PeriodicProcess] = None

    # ------------------------------------------------------------------
    def peer_of(self, device_id: str) -> D2DEndpoint:
        """The endpoint on the other side of ``device_id``."""
        if device_id == self.initiator.device_id:
            return self.responder
        if device_id == self.responder.device_id:
            return self.initiator
        raise D2DTransferError(f"{device_id} is not part of this connection")

    def endpoint_of(self, device_id: str) -> D2DEndpoint:
        if device_id == self.initiator.device_id:
            return self.initiator
        if device_id == self.responder.device_id:
            return self.responder
        raise D2DTransferError(f"{device_id} is not part of this connection")

    def current_distance_m(self) -> float:
        now = self.medium.sim.now
        return distance_between(self.initiator.position(now), self.responder.position(now))

    @property
    def duration_s(self) -> float:
        return self.medium.sim.now - self.established_at_s

    # ------------------------------------------------------------------
    def send(
        self,
        sender_id: str,
        size_bytes: int,
        payload: Any = None,
        on_result: Optional[Callable[[bool], None]] = None,
        control: bool = False,
    ) -> bool:
        """Transfer ``payload`` to the peer.

        Returns ``True`` if the transfer was started (delivery happens one
        transfer-latency later); ``False`` if the link was found dead or out
        of range — in which case the connection is torn down and
        ``on_result(False)`` fires immediately.

        ``control`` marks tiny protocol messages (feedback acks): they use
        the small fixed ack charge instead of the full forward/receive cost.
        """
        if size_bytes < 0:
            raise D2DTransferError(f"size_bytes must be non-negative: {size_bytes}")
        sender = self.endpoint_of(sender_id)
        receiver = self.peer_of(sender_id)
        now = self.medium.sim.now
        if not self.alive or not sender.powered_on or not receiver.powered_on:
            self.medium._break_connection(self, "peer unavailable")
            if on_result is not None:
                on_result(False)
            return False
        if not self.medium.link_allowed(sender.device_id, receiver.device_id):
            self.medium._break_connection(self, "link down")
            if on_result is not None:
                on_result(False)
            return False
        distance = self.current_distance_m()
        if distance > self.medium.technology.max_range_m or not self.medium.technology.link.in_range(
            distance
        ):
            self.medium._break_connection(self, "out of range")
            if on_result is not None:
                on_result(False)
            return False

        t_section = time.perf_counter()
        profile = self.medium.profile
        tech = self.medium.technology
        # near the coverage edge, frames are lost probabilistically (PER);
        # TX/RX energy is still spent — the frame went out, it just didn't
        # arrive. Zero inside comfortable range, so calibrated experiments
        # at 1-15 m are unaffected.
        per = tech.link.packet_error_rate(distance)
        lost = per > 0.0 and self.medium.sim.rng.get("d2d-loss").random() < per
        transfer_latency_s = tech.transfer_latency_s
        if control:
            sender.charge(EnergyPhase.D2D_ACK, profile.relay_ack_uah, now)
            receiver.charge(EnergyPhase.D2D_ACK, profile.relay_ack_uah, now)
        else:
            channel = self.medium.channel
            if channel is None:
                charge_duration_s = profile.d2d_transfer_s
            else:
                # interference-aware mode: the transfer runs at the
                # Shannon rate the channel grants, and both sides pay
                # energy in proportion to the actual airtime (the fixed
                # per-message base charge is calibrated at d2d_transfer_s).
                grant = channel.begin_transfer(
                    sender.device_id,
                    receiver.device_id,
                    sender.position(now),
                    receiver.position(now),
                    size_bytes,
                    now,
                )
                transfer_latency_s = grant.duration_s
                charge_duration_s = grant.duration_s
                airtime_scale = grant.duration_s / profile.d2d_transfer_s
            coalesced = (
                now - receiver.last_data_rx_s <= profile.d2d_rx_coalesce_window_s
            )
            tx_full = profile.ue_forward_cost_uah(size_bytes, distance)
            rx_full = profile.relay_receive_cost_uah(size_bytes, coalesced)
            if channel is None:
                tx_uah = tx_full * tech.tx_scale
                rx_uah = rx_full * tech.rx_scale
            else:
                # airtime scales only the time-dependent base charge; the
                # per-byte slope already grows with payload size, and so
                # does the grant duration, so scaling the full cost would
                # make energy quadratic in size.
                tx_base = profile.ue_forward_cost_uah(0, distance)
                rx_base = profile.relay_receive_cost_uah(0, coalesced)
                tx_uah = (
                    tx_base * airtime_scale + (tx_full - tx_base)
                ) * tech.tx_scale
                rx_uah = (
                    rx_base * airtime_scale + (rx_full - rx_base)
                ) * tech.rx_scale
            receiver.last_data_rx_s = now
            sender.charge(
                EnergyPhase.D2D_FORWARD, tx_uah, now, duration_s=charge_duration_s
            )
            receiver.charge(
                EnergyPhase.D2D_RECEIVE, rx_uah, now, duration_s=charge_duration_s
            )

        def deliver() -> None:
            if not self.alive or lost:
                self.messages_lost += 1
                if on_result is not None:
                    on_result(False)
                return
            self.messages_delivered += 1
            self.bytes_transferred += size_bytes
            if receiver.on_message is not None:
                receiver.on_message(self, sender_id, payload, size_bytes)
            if on_result is not None:
                on_result(True)

        self.medium.sim.schedule(transfer_latency_s, deliver, name="d2d_deliver")
        self.medium.perf.add_seconds(
            "transfer", time.perf_counter() - t_section
        )
        return True

    def close(self, reason: str = "closed") -> None:
        """Tear the connection down; idempotent."""
        self.medium._break_connection(self, reason)


class _SortedCandidateCache:
    """Memo for the registration-order sort of scan candidate sets.

    The spatial index already caches the *unsorted* merged cell block per
    ``(cell, k)``; on static crowds every scan from the same neighbourhood
    then re-filtered and re-sorted that same block. This cache keys the
    finished (requester-filtered, registration-order-sorted) id list by
    ``(requester_id, cell, k)`` and stamps it with ``(index version,
    endpoint count, unindexed-set version)`` — any membership or bin
    change invalidates every entry. All three components are needed: the
    index version misses registrations that only touch the unindexable
    side set, the endpoint count misses a same-window remove+add swap,
    and the unindexed-set version closes exactly that gap. ``enabled``
    exists so regression tests can force the re-sort path and prove
    identical output.
    """

    __slots__ = ("enabled", "_entries")

    def __init__(self) -> None:
        self.enabled = True
        self._entries: Dict[tuple, tuple] = {}

    def get(self, key: tuple, stamp: tuple) -> Optional[List[str]]:
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is not None and entry[0] == stamp:
            return entry[1]
        return None

    def put(self, key: tuple, stamp: tuple, ids: List[str]) -> None:
        if self.enabled:
            self._entries[key] = (stamp, ids)


class _VectorBlock:
    """Aligned coordinate arrays for one ``(cell, k)`` candidate block.

    ``ids`` is the registration-order-sorted merged block (index cells +
    unindexed side set, requester *not* filtered — the block is shared by
    every requester scanning from the same cell). Static endpoints have
    their coordinates baked in at build time; dynamic ones are listed in
    ``_dynamic`` and refreshed into the arrays on every scan before the
    numpy distance evaluation.
    """

    __slots__ = ("ids", "xs", "ys", "static_flags", "_dynamic")

    def __init__(self, ids, endpoints, static_pos) -> None:
        n = len(ids)
        xs = _np.empty(n)
        ys = _np.empty(n)
        static_flags = [False] * n
        dynamic = []
        for i, device_id in enumerate(ids):
            pos = static_pos.get(device_id)
            if pos is not None:
                xs[i] = pos[0]
                ys[i] = pos[1]
                static_flags[i] = True
            else:
                dynamic.append((i, endpoints[device_id]))
        self.ids = ids
        self.xs = xs
        self.ys = ys
        self.static_flags = static_flags
        self._dynamic = dynamic

    def distances_from(self, origin: Position, t: float):
        """Refresh dynamic coordinates, then the block distances to
        ``origin`` as one numpy array.

        ``sqrt(dx*dx + dy*dy)`` elementwise is the exact IEEE-754
        operation sequence :func:`repro.mobility.space.distance_between`
        performs (sub, mul, mul, add, sqrt — each correctly rounded), so
        every element is bit-identical to the scalar path's distance.
        """
        xs = self.xs
        ys = self.ys
        for i, endpoint in self._dynamic:
            x, y = endpoint.position(t)
            xs[i] = x
            ys[i] = y
        dx = xs - origin[0]
        dy = ys - origin[1]
        return _np.sqrt(dx * dx + dy * dy)


class D2DMedium:
    """The shared D2D radio environment for one technology.

    Parameters
    ----------
    sim:
        Owning simulator.
    technology:
        Which D2D technology this medium models.
    profile:
        Energy calibration (shared with the cellular side).
    link_check_period_s:
        How often live connections re-check range under mobility.
    allow_undeployed:
        LTE Direct is modelled but flagged undeployed (the paper abandons
        it "for generality consideration"); using it requires opting in.
    group_aware:
        When true, connecting to a responder that already owns a live
        group is a *join* rather than a fresh formation: faster and
        cheaper on the responder side (no second GO negotiation). Off by
        default so the Table III/IV calibration — measured on pairwise
        formations — stays exact.
    group_join_discount:
        Fraction of the connection latency/energy a join costs.
    brute_force:
        Escape hatch: disable the spatial index and scan every endpoint
        on each discovery, exactly as the pre-index implementation did.
        Discovery results are byte-identical either way (same peers, same
        RSSI draws, same order) — the flag exists for the determinism
        guard and for A/B benchmarking, not because the results differ.
    index_refresh_s:
        How stale the binned positions of *moving* endpoints may get
        before a scan triggers an incremental re-bin pass. Between
        passes, queries widen by ``max mobile speed × staleness`` so a
        mover can never escape its candidate cells unseen. Static
        endpoints are binned once and never touched.
    channel:
        Optional interference-aware channel model. When set, data
        transfers run at Shannon-capacity rates under co-channel
        interference and bill energy per actual airtime; when ``None``
        (the default) the fixed latency/energy constants apply and
        behaviour is byte-identical to the pre-channel implementation.
    """

    def __init__(
        self,
        sim: Simulator,
        technology: D2DTechnology,
        profile: EnergyProfile = DEFAULT_PROFILE,
        link_check_period_s: float = 5.0,
        allow_undeployed: bool = False,
        group_aware: bool = False,
        group_join_discount: float = 0.5,
        brute_force: bool = False,
        index_refresh_s: float = 1.0,
        channel: Optional[ChannelModel] = None,
    ) -> None:
        if not 0.0 < group_join_discount <= 1.0:
            raise ValueError(
                f"group_join_discount must be in (0,1], got {group_join_discount}"
            )
        if not technology.deployed and not allow_undeployed:
            raise ValueError(
                f"{technology.name} is not deployed in the modelled network; "
                "pass allow_undeployed=True to simulate it anyway"
            )
        if index_refresh_s <= 0:
            raise ValueError(f"index_refresh_s must be positive, got {index_refresh_s}")
        self.sim = sim
        self.technology = technology
        self.profile = profile
        self.link_check_period_s = link_check_period_s
        self.group_aware = group_aware
        self.group_join_discount = group_join_discount
        self.brute_force = brute_force
        self.index_refresh_s = index_refresh_s
        self.channel = channel
        if channel is not None:
            # SINR evaluation reads co-channel transmitters' *current*
            # positions through this hook instead of the stale ones their
            # leases recorded at their own last transfer. Mobility models
            # are analytic, so the hook keeps channel mode replayable.
            channel.position_resolver = self._channel_position
        self.perf = PerfCounters()
        self._endpoints: Dict[str, D2DEndpoint] = {}
        #: device_id → fixed position for endpoints whose mobility model
        #: has a zero speed bound: their position never changes, so scans
        #: skip the per-candidate ``position(t)`` call entirely. Clearing
        #: this dict (tests do) falls back to live position lookups.
        self._static_pos: Dict[str, Position] = {}
        #: (requester, cell, k) → (stamp, sorted candidate ids); see
        #: ``_scan_candidates``. ``enabled=False`` forces full re-sorts.
        self._sorted_cache = _SortedCandidateCache()
        #: Kill switch for the numpy block-distance scan path. On by
        #: default when numpy imports; the determinism guard flips it to
        #: prove scalar and vectorized scans are byte-identical.
        self.vectorized = _np is not None
        #: (cell, k) → _VectorBlock | None (None = block below the numpy
        #: threshold). One *global* stamp covers the whole dict — the
        #: stamp has no per-key component — so any membership/bin change
        #: clears it outright, keeping it bounded exactly like the
        #: index's block cache.
        self._vector_blocks: Dict[tuple, Optional[_VectorBlock]] = {}
        self._vector_blocks_stamp: Optional[tuple] = None
        #: registration order per device — candidate sets from the spatial
        #: index are re-sorted by this so scans examine peers in exactly
        #: the order a full walk of ``_endpoints`` would, keeping RSSI
        #: noise draws and result ordering identical to brute force.
        #: ``_next_seq`` is monotonic (never reused after unregister), so
        #: two different registration histories can never collide on a
        #: sequence number.
        self._seq: Dict[str, int] = {}
        self._next_seq = 0
        self._index: Optional[SpatialIndex] = (
            None if brute_force else SpatialIndex(technology.max_range_m)
        )
        #: endpoints with a finite, nonzero speed bound (rebinned lazily);
        #: refresh passes evaluate them through a TrajectoryBatch rebuilt
        #: whenever the membership version moves
        self._mobile: Dict[str, D2DEndpoint] = {}
        self._mobile_version = 0
        self._mobile_batch: Optional[TrajectoryBatch] = None
        self._mobile_batch_version = -1
        #: endpoints whose mobility model has no known speed bound: the
        #: index can't promise they stay near their bin, so scans always
        #: examine them exactly. ``_unindexed_version`` bumps on every
        #: membership change of this set — it is a cache-stamp component
        #: because unindexed churn is invisible to both the index version
        #: and the endpoint count (remove one, add one: both unchanged).
        self._unindexed: Set[str] = set()
        self._unindexed_version = 0
        self._max_mobile_speed = 0.0
        self._last_refresh_s = sim.now
        #: insertion-ordered live-connection set and per-endpoint adjacency
        #: (dicts as ordered sets: O(1) add/remove, stable iteration)
        self._connections: Dict[D2DConnection, None] = {}
        self._adjacency: Dict[str, Dict[D2DConnection, None]] = {}
        #: Optional veto on pairwise reachability (chaos link flap): called
        #: as ``link_gate(a_id, b_id)``; returning ``False`` makes the pair
        #: mutually unreachable — discovery hides them, connects fail, live
        #: links break at the next send or link check.
        self.link_gate: Optional[Callable[[str, str], bool]] = None
        # statistics
        self.discoveries = 0
        self.connections_established = 0
        self.connections_failed = 0
        self.connections_broken = 0
        self.group_joins = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, endpoint: D2DEndpoint) -> None:
        if endpoint.device_id in self._endpoints:
            raise ValueError(f"duplicate endpoint {endpoint.device_id}")
        device_id = endpoint.device_id
        self._seq[device_id] = self._next_seq
        self._next_seq += 1
        self._endpoints[device_id] = endpoint
        max_speed = endpoint.mobility.max_speed_m_s()
        if max_speed == 0.0:
            # a zero speed bound means the position is time-invariant:
            # memoise it once and spare every future scan the call.
            self._static_pos[device_id] = endpoint.position(self.sim.now)
        if self._index is None:
            return
        if max_speed is None:
            self._unindexed.add(device_id)
            self._unindexed_version += 1
            return
        self._index.insert(device_id, endpoint.position(self.sim.now))
        if max_speed > 0.0:
            self._mobile[device_id] = endpoint
            self._mobile_version += 1
            if max_speed > self._max_mobile_speed:
                self._max_mobile_speed = max_speed

    def unregister(self, device_id: str) -> None:
        """Remove an endpoint from the medium entirely.

        Breaks its live connections, then drops every trace of it —
        endpoint map, registration sequence, static memo, mobile set,
        unindexed set, spatial index. The sharded kernel churns ghost
        endpoints through this every sync window, so all the scan-cache
        stamps must move: the index version covers indexed members, and
        ``_unindexed_version`` covers the side set (whose churn is
        invisible to both the index version and the endpoint count).
        """
        endpoint = self.endpoint(device_id)
        for connection in list(self._adjacency.get(device_id, ())):
            self._break_connection(connection, "peer unregistered")
        del self._endpoints[device_id]
        del self._seq[device_id]
        self._static_pos.pop(device_id, None)
        if self._index is None:
            return
        if device_id in self._unindexed:
            self._unindexed.discard(device_id)
            self._unindexed_version += 1
            return
        if self._mobile.pop(device_id, None) is not None:
            self._mobile_version += 1
        self._index.remove(device_id)
        # _max_mobile_speed stays a (possibly loose) upper bound on
        # purpose: queries only ever widen, so candidate supersets remain
        # supersets and discovery correctness is unaffected.

    def endpoint(self, device_id: str) -> D2DEndpoint:
        try:
            return self._endpoints[device_id]
        except KeyError:
            raise KeyError(f"no endpoint registered for {device_id!r}") from None

    def _channel_position(self, device_id: str, t: float) -> Optional[Position]:
        """Current position of a device for the channel's SINR refresh
        (``None`` for ids the medium no longer knows, e.g. after tests
        drop endpoints — the lease then keeps its last-known position)."""
        endpoint = self._endpoints.get(device_id)
        return None if endpoint is None else endpoint.position(t)

    def power_off(self, device_id: str) -> None:
        """Device died: drop its endpoint state and break its connections."""
        endpoint = self.endpoint(device_id)
        endpoint.powered_on = False
        endpoint.advertising = False
        for connection in list(self._adjacency.get(device_id, ())):
            self._break_connection(connection, "peer powered off")

    def power_on(self, device_id: str) -> None:
        """Device came back: restore radio power (advertising stays off)."""
        self.endpoint(device_id).powered_on = True

    def connections_of(self, device_id: str) -> List[D2DConnection]:
        self.endpoint(device_id)  # keep the unknown-device KeyError contract
        return list(self._adjacency.get(device_id, ()))

    def live_connections(self) -> List[D2DConnection]:
        """Snapshot of every currently established connection."""
        return list(self._connections)

    def link_allowed(self, a_id: str, b_id: str) -> bool:
        """Whether the gate (if any) permits the ``a``–``b`` pair."""
        return self.link_gate is None or self.link_gate(a_id, b_id)

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def discover(
        self,
        requester_id: str,
        on_complete: Callable[[List[PeerInfo]], None],
        rssi_noise: bool = True,
    ) -> None:
        """Scan for advertising peers in range.

        Completes after the technology's discovery latency. Only the
        requester pays a discovery charge (its active scan); answering a
        probe is a single frame and is booked as free. The responder's
        discovery-phase cost — its own find-phase participation — is paid
        when a connection is actually formed (see :meth:`connect`), which
        is exactly how the paper's 1:1 Table III measurement decomposes.
        """
        requester = self.endpoint(requester_id)
        if not requester.powered_on:
            raise D2DTransferError(f"{requester_id} is powered off")
        now = self.sim.now
        self.discoveries += 1
        tech = self.technology
        requester.charge(
            EnergyPhase.D2D_DISCOVERY,
            self.profile.ue_discovery_uah * tech.discovery_scale,
            now,
            duration_s=tech.discovery_latency_s,
        )

        def finish() -> None:
            t_section = time.perf_counter()
            t = self.sim.now
            rng = self.sim.rng.get("d2d-discovery") if rssi_noise else None
            found: List[PeerInfo] = []
            static_pos = self._static_pos
            origin = static_pos.get(requester_id)
            if origin is None:
                origin = requester.position(t)
            perf = self.perf
            perf.scans += 1
            # Hot loop: hoist everything invariant out of the candidate walk.
            link = tech.link
            probe = link.probe
            shadowed = link.shadowed
            estimate_distance = link.estimate_distance
            max_range = tech.max_range_m
            link_allowed = self.link_allowed
            append = found.append
            static_get = static_pos.get
            block = (
                self._vector_block_for(origin, t)
                if self.vectorized and self._index is not None
                else None
            )
            if block is not None:
                # Vectorized path: one numpy pass computes every block
                # distance and discards the out-of-range majority in C.
                # Reordering the range filter ahead of the advertising
                # filter is safe for determinism because the survivor set
                # of *all* filters — the only candidates that reach the
                # RSSI noise draw — is order-independent, and survivors
                # are visited in registration order either way.
                perf.vectorized_scans += 1
                ids = block.ids
                perf.scan_candidates_examined += len(ids) - 1
                distances = block.distances_from(origin, t)
                keep = _np.nonzero(distances <= max_range)[0]
                # .tolist() converts to exact python floats, and
                # probe_block keeps the per-element math bit-identical to
                # probe — no numpy scalar ever leaks into a PeerInfo.
                probed = link.probe_block(distances[keep].tolist())
                endpoints = self._endpoints
                static_flags = block.static_flags
                for j, idx in enumerate(keep.tolist()):
                    device_id = ids[idx]
                    if device_id == requester_id:
                        continue
                    peer = endpoints[device_id]
                    if not (peer.advertising and peer.powered_on):
                        continue
                    if static_flags[idx]:
                        perf.static_position_hits += 1
                    mean_rssi = probed[j]
                    if mean_rssi is None:
                        continue
                    if not link_allowed(requester_id, device_id):
                        continue
                    rssi = shadowed(mean_rssi, rng)
                    append(
                        PeerInfo(
                            device_id=device_id,
                            rssi_dbm=rssi,
                            estimated_distance_m=estimate_distance(rssi),
                            advertisement=peer.advertisement_view,
                        )
                    )
            else:
                for peer in self._scan_candidates(requester_id, origin, t):
                    if not (peer.advertising and peer.powered_on):
                        continue
                    peer_pos = static_get(peer.device_id)
                    if peer_pos is None:
                        peer_pos = peer.position(t)
                    else:
                        perf.static_position_hits += 1
                    distance = distance_between(origin, peer_pos)
                    if distance > max_range:
                        continue
                    mean_rssi = probe(distance)
                    if mean_rssi is None:
                        continue
                    if not link_allowed(requester_id, peer.device_id):
                        continue
                    rssi = shadowed(mean_rssi, rng)
                    append(
                        PeerInfo(
                            device_id=peer.device_id,
                            rssi_dbm=rssi,
                            estimated_distance_m=estimate_distance(rssi),
                            advertisement=peer.advertisement_view,
                        )
                    )
            # reverse=True keeps insertion order for equal RSSI (stable
            # sort), exactly like the previous ascending negated-key sort.
            found.sort(key=_RSSI_KEY, reverse=True)
            perf.scan_peers_returned += len(found)
            # section ends before the callback: downstream reactions
            # (matching, connects) are not discovery work
            perf.add_seconds("discover", time.perf_counter() - t_section)
            on_complete(found)

        self.sim.schedule(tech.discovery_latency_s, finish, name="d2d_discover")

    def _scan_candidates(
        self, requester_id: str, origin: Position, t: float
    ) -> List[D2DEndpoint]:
        """Endpoints a scan must examine, in registration order.

        With the spatial index on, this is the union of the index's
        candidate cells (range + drift slack) and the always-checked
        unindexable set — a superset of every in-range peer, usually a
        tiny fraction of the crowd. Brute force (or no index) returns
        everyone. Registration-order iteration keeps the RSSI noise
        stream and the result ordering identical across both paths.
        """
        perf = self.perf
        index = self._index
        if index is None:
            perf.brute_force_scans += 1
            candidates = [
                peer
                for device_id, peer in self._endpoints.items()
                if device_id != requester_id
            ]
            perf.scan_candidates_examined += len(candidates)
            return candidates
        self._refresh_index(t)
        slack = self._max_mobile_speed * (t - self._last_refresh_s)
        reach = self.technology.max_range_m + slack
        # Incremental re-sort: the filtered, registration-order-sorted id
        # list for a (requester, cell block) pair is cached and reused
        # while neither the index nor the endpoint set has changed —
        # mirrors query_block's (cell, k) key so the cache is exact.
        cell = index._cell_of(origin)
        k = max(0, math.ceil(reach / index.cell_size_m))
        cache_key = (requester_id, cell, k)
        stamp = (index._version, len(self._endpoints), self._unindexed_version)
        cached_ids = self._sorted_cache.get(cache_key, stamp)
        if cached_ids is not None:
            perf.sorted_cache_hits += 1
            ids = cached_ids
        else:
            # query_block returns a cached, shared list — never mutate it;
            # the requester filter below rebinds to a fresh list either way.
            ids = index.query_block(origin, self.technology.max_range_m, slack)
            if self._unindexed:
                merged = set(ids)
                merged.update(self._unindexed)
                ids = list(merged)
            ids = [device_id for device_id in ids if device_id != requester_id]
            ids.sort(key=self._seq.__getitem__)
            self._sorted_cache.put(cache_key, stamp, ids)
            # counted only on the miss path: a sorted-cache hit never
            # touches the index, so hits and queries stay disjoint.
            perf.index_queries += 1
        perf.index_block_cache_hits = index.block_cache_hits
        perf.scan_candidates_examined += len(ids)
        endpoints = self._endpoints
        return [endpoints[device_id] for device_id in ids]

    def _vector_block_for(
        self, origin: Position, t: float
    ) -> Optional[_VectorBlock]:
        """The shared coordinate block for scans from ``origin``'s cell.

        ``None`` when the merged block is below ``_VECTOR_MIN_BLOCK`` —
        the too-small verdict is memoised per ``(cell, k)`` so boundary
        scans don't re-derive it every time. The whole dict is cleared
        when the (global) stamp moves, which bounds it by the number of
        distinct blocks scanned since the last membership/bin change.
        """
        index = self._index
        self._refresh_index(t)
        slack = self._max_mobile_speed * (t - self._last_refresh_s)
        max_range = self.technology.max_range_m
        cell = index._cell_of(origin)
        k = max(0, math.ceil((max_range + slack) / index.cell_size_m))
        stamp = (index._version, len(self._endpoints), self._unindexed_version)
        blocks = self._vector_blocks
        if stamp != self._vector_blocks_stamp:
            blocks.clear()
            self._vector_blocks_stamp = stamp
        key = (cell, k)
        if key in blocks:
            return blocks[key]
        perf = self.perf
        ids = index.query_block(origin, max_range, slack)
        if self._unindexed:
            merged = set(ids)
            merged.update(self._unindexed)
            ids = list(merged)
        perf.index_queries += 1
        perf.index_block_cache_hits = index.block_cache_hits
        if len(ids) < _VECTOR_MIN_BLOCK:
            blocks[key] = None
            return None
        # query_block's list is shared — sorted() rebinds, never mutates.
        ids = sorted(ids, key=self._seq.__getitem__)
        block = _VectorBlock(ids, self._endpoints, self._static_pos)
        blocks[key] = block
        perf.vector_block_builds += 1
        return block

    def _refresh_index(self, t: float) -> None:
        """Re-bin moving endpoints once their drift bound grows stale.

        Positions come from a :class:`TrajectoryBatch` so blocks of
        straight-line movers are evaluated in one numpy multiply-add
        instead of N ``position()`` calls. Update order (affine block
        first, then the exact remainder) differs from dict order, but the
        index only bins candidates — scan paths re-sort by registration
        sequence — so discovery output is unaffected.
        """
        if not self._mobile or t - self._last_refresh_s < self.index_refresh_s:
            return
        index = self._index
        assert index is not None
        batch = self._mobile_batch
        if batch is None or self._mobile_batch_version != self._mobile_version:
            batch = TrajectoryBatch(
                [(d, ep.mobility) for d, ep in self._mobile.items()]
            )
            self._mobile_batch = batch
            self._mobile_batch_version = self._mobile_version
        update = index.update
        for device_id, x, y in batch.positions_at(t):
            update(device_id, (x, y))
        self._last_refresh_s = t
        perf = self.perf
        perf.index_rebuild_passes += 1
        perf.index_updates = index.updates
        perf.index_moves = index.moves

    # ------------------------------------------------------------------
    # connection establishment
    # ------------------------------------------------------------------
    def connect(
        self,
        initiator_id: str,
        responder_id: str,
        on_complete: Callable[[Optional[D2DConnection]], None],
    ) -> None:
        """Establish a connection; ``on_complete(None)`` on failure.

        The responder pays its deferred discovery-phase charge here (its
        find-phase participation in the GO negotiation) plus connection;
        the initiator already paid discovery at scan time.
        """
        if initiator_id == responder_id:
            raise D2DTransferError(f"{initiator_id} cannot connect to itself")
        initiator = self.endpoint(initiator_id)
        responder = self.endpoint(responder_id)
        if not initiator.powered_on:
            raise D2DTransferError(f"{initiator_id} is powered off")
        now = self.sim.now
        tech = self.technology
        # joining an existing group skips the second GO negotiation
        is_join = self.group_aware and bool(self._adjacency.get(responder_id))
        join_scale = self.group_join_discount if is_join else 1.0
        if is_join:
            self.group_joins += 1
        connect_latency = tech.connection_latency_s * join_scale
        initiator.charge(
            EnergyPhase.D2D_CONNECTION,
            self.profile.ue_connection_uah * tech.connection_scale * join_scale,
            now,
            duration_s=connect_latency,
        )
        responder.charge(
            EnergyPhase.D2D_DISCOVERY,
            self.profile.relay_discovery_uah * tech.discovery_scale * join_scale,
            now,
            duration_s=tech.discovery_latency_s * join_scale,
        )
        responder.charge(
            EnergyPhase.D2D_CONNECTION,
            self.profile.relay_connection_uah * tech.connection_scale * join_scale,
            now,
            duration_s=connect_latency,
        )

        def finish() -> None:
            t = self.sim.now
            distance = distance_between(initiator.position(t), responder.position(t))
            if (
                not responder.powered_on
                or not initiator.powered_on
                or distance > tech.max_range_m
                or not tech.link.in_range(distance)
                or not self.link_allowed(initiator_id, responder_id)
            ):
                self.connections_failed += 1
                on_complete(None)
                return
            connection = D2DConnection(self, initiator, responder, t)
            self._connections[connection] = None
            self._adjacency.setdefault(initiator_id, {})[connection] = None
            self._adjacency.setdefault(responder_id, {})[connection] = None
            self.connections_established += 1
            connection._monitor = self.sim.every(
                self.link_check_period_s,
                self._check_link,
                connection,
                name="d2d_link_check",
            )
            on_complete(connection)

        self.sim.schedule(connect_latency, finish, name="d2d_connect")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_link(self, connection: D2DConnection) -> None:
        if not connection.alive:
            return
        if not self.link_allowed(
            connection.initiator.device_id, connection.responder.device_id
        ):
            self._break_connection(connection, "link down")
            return
        distance = connection.current_distance_m()
        if distance > self.technology.max_range_m or not self.technology.link.in_range(
            distance
        ):
            self._break_connection(connection, "out of range")

    def _break_connection(self, connection: D2DConnection, reason: str) -> None:
        if not connection.alive:
            return
        connection.alive = False
        if connection._monitor is not None:
            connection._monitor.stop()
            connection._monitor = None
        self._connections.pop(connection, None)
        for device_id in (connection.initiator.device_id, connection.responder.device_id):
            adjacency = self._adjacency.get(device_id)
            if adjacency is not None:
                adjacency.pop(connection, None)
                if not adjacency:
                    del self._adjacency[device_id]
        self.connections_broken += 1
        for endpoint in (connection.initiator, connection.responder):
            if endpoint.on_disconnect is not None:
                endpoint.on_disconnect(connection, reason)
