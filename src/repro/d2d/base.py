"""Technology-generic D2D medium, endpoints and connections.

One :class:`D2DMedium` per simulation models the shared radio environment
for one D2D technology: who can discover whom (range + advertisement),
connection establishment, range-limited transfers with distance-dependent
energy, and link monitoring that breaks connections when devices drift
apart (the failure mode the paper's feedback mechanism exists for).

Energy conventions follow the paper's Table III: the *initiator* of
discovery/connection pays the UE-side charge, the responder the relay-side
charge; a message sender pays the forward charge (distance-scaled, Fig. 12)
and the receiver the receive charge (Table IV slope).
"""

from __future__ import annotations

import dataclasses
import math
import operator
import types
from typing import Any, Callable, Dict, List, Mapping, Optional, Set

from repro.channel.model import ChannelModel
from repro.d2d.link import LinkModel
from repro.energy.model import EnergyModel, EnergyPhase
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.mobility.index import SpatialIndex
from repro.mobility.models import MobilityModel
from repro.mobility.space import Position, distance_between
from repro.perf import PerfCounters
from repro.sim.engine import PeriodicProcess, Simulator

#: Scan-result ordering key (strongest signal first via ``reverse=True``).
_RSSI_KEY = operator.attrgetter("rssi_dbm")


class D2DTransferError(RuntimeError):
    """Raised for illegal transfer attempts (closed connection, bad peer)."""


@dataclasses.dataclass(frozen=True)
class D2DTechnology:
    """Capabilities and relative energy cost of one D2D technology.

    Energy scales are multipliers applied to the Wi-Fi Direct-calibrated
    base costs in :class:`~repro.energy.profiles.EnergyProfile` (so
    Wi-Fi Direct itself uses 1.0 everywhere).
    """

    name: str
    max_range_m: float
    discovery_latency_s: float
    connection_latency_s: float
    transfer_latency_s: float
    deployed: bool = True  # LTE Direct is modelled but gated (Sec. IV-A)
    discovery_scale: float = 1.0
    connection_scale: float = 1.0
    tx_scale: float = 1.0
    rx_scale: float = 1.0
    link: LinkModel = dataclasses.field(default_factory=LinkModel)


@dataclasses.dataclass(frozen=True, slots=True)
class PeerInfo:
    """What a discovery scan reveals about one nearby peer.

    ``advertisement`` is a **read-only view** of the peer's live service
    record, not a per-scan copy (scans used to deep-copy every record for
    every peer, which dominated dense-crowd scan cost). Consumers that
    need a point-in-time snapshot should take ``dict(peer.advertisement)``
    themselves; attempts to mutate the view raise ``TypeError``, so a
    misbehaving consumer can never corrupt the endpoint's record.
    """

    device_id: str
    rssi_dbm: float
    estimated_distance_m: float
    advertisement: Mapping[str, Any]


class D2DEndpoint:
    """One device's attachment to the D2D medium.

    ``advertisement`` is the small service record other devices see during
    discovery (role, remaining relay capacity, …). ``on_message`` receives
    ``(connection, sender_id, payload, size_bytes)``; ``on_disconnect``
    receives ``(connection, reason)``.
    """

    def __init__(
        self,
        device_id: str,
        mobility: MobilityModel,
        energy: Optional[EnergyModel] = None,
        advertisement: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.device_id = device_id
        self.mobility = mobility
        self.energy = energy
        self.advertisement: Dict[str, Any] = dict(advertisement or {})
        #: Live read-only view of ``advertisement``, shared by every
        #: ``PeerInfo`` naming this endpoint (one proxy per endpoint, not
        #: one per scan result). Stays valid because the record is only
        #: ever mutated in place, never rebound.
        self.advertisement_view: Mapping[str, Any] = types.MappingProxyType(
            self.advertisement
        )
        self.advertising = False
        self.powered_on = True
        #: Time of the last data receive — drives wake coalescing.
        self.last_data_rx_s = float("-inf")
        self.on_message: Optional[Callable[["D2DConnection", str, Any, int], None]] = None
        self.on_disconnect: Optional[Callable[["D2DConnection", str], None]] = None

    def position(self, t: float) -> Position:
        return self.mobility.position(t)

    def charge(
        self, phase: EnergyPhase, uah: float, time_s: float, duration_s: float = 0.0
    ) -> None:
        if self.energy is not None:
            self.energy.charge(phase, uah, time_s=time_s, duration_s=duration_s)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"D2DEndpoint({self.device_id!r}, advertising={self.advertising})"


class D2DConnection:
    """An established point-to-point D2D link.

    ``group_owner_id`` records which side won the Wi-Fi Direct GO
    negotiation (from the advertised ``go_intent`` values; the initiator
    is assumed to be a UE pinning intent 0 unless it advertises
    otherwise), matching the paper's Sec. IV-C setup where relays start at
    intent 15.
    """

    def __init__(
        self,
        medium: "D2DMedium",
        initiator: D2DEndpoint,
        responder: D2DEndpoint,
        established_at_s: float,
    ) -> None:
        self.medium = medium
        self.initiator = initiator
        self.responder = responder
        self.established_at_s = established_at_s
        initiator_intent = int(initiator.advertisement.get("go_intent", 0))
        responder_intent = int(responder.advertisement.get("go_intent", 0))
        self.group_owner_id = (
            initiator.device_id
            if initiator_intent > responder_intent
            else responder.device_id
        )
        self.alive = True
        self.messages_delivered = 0
        self.messages_lost = 0
        self.bytes_transferred = 0
        self._monitor: Optional[PeriodicProcess] = None

    # ------------------------------------------------------------------
    def peer_of(self, device_id: str) -> D2DEndpoint:
        """The endpoint on the other side of ``device_id``."""
        if device_id == self.initiator.device_id:
            return self.responder
        if device_id == self.responder.device_id:
            return self.initiator
        raise D2DTransferError(f"{device_id} is not part of this connection")

    def endpoint_of(self, device_id: str) -> D2DEndpoint:
        if device_id == self.initiator.device_id:
            return self.initiator
        if device_id == self.responder.device_id:
            return self.responder
        raise D2DTransferError(f"{device_id} is not part of this connection")

    def current_distance_m(self) -> float:
        now = self.medium.sim.now
        return distance_between(self.initiator.position(now), self.responder.position(now))

    @property
    def duration_s(self) -> float:
        return self.medium.sim.now - self.established_at_s

    # ------------------------------------------------------------------
    def send(
        self,
        sender_id: str,
        size_bytes: int,
        payload: Any = None,
        on_result: Optional[Callable[[bool], None]] = None,
        control: bool = False,
    ) -> bool:
        """Transfer ``payload`` to the peer.

        Returns ``True`` if the transfer was started (delivery happens one
        transfer-latency later); ``False`` if the link was found dead or out
        of range — in which case the connection is torn down and
        ``on_result(False)`` fires immediately.

        ``control`` marks tiny protocol messages (feedback acks): they use
        the small fixed ack charge instead of the full forward/receive cost.
        """
        if size_bytes < 0:
            raise D2DTransferError(f"size_bytes must be non-negative: {size_bytes}")
        sender = self.endpoint_of(sender_id)
        receiver = self.peer_of(sender_id)
        now = self.medium.sim.now
        if not self.alive or not sender.powered_on or not receiver.powered_on:
            self.medium._break_connection(self, "peer unavailable")
            if on_result is not None:
                on_result(False)
            return False
        if not self.medium.link_allowed(sender.device_id, receiver.device_id):
            self.medium._break_connection(self, "link down")
            if on_result is not None:
                on_result(False)
            return False
        distance = self.current_distance_m()
        if distance > self.medium.technology.max_range_m or not self.medium.technology.link.in_range(
            distance
        ):
            self.medium._break_connection(self, "out of range")
            if on_result is not None:
                on_result(False)
            return False

        profile = self.medium.profile
        tech = self.medium.technology
        # near the coverage edge, frames are lost probabilistically (PER);
        # TX/RX energy is still spent — the frame went out, it just didn't
        # arrive. Zero inside comfortable range, so calibrated experiments
        # at 1-15 m are unaffected.
        per = tech.link.packet_error_rate(distance)
        lost = per > 0.0 and self.medium.sim.rng.get("d2d-loss").random() < per
        transfer_latency_s = tech.transfer_latency_s
        if control:
            sender.charge(EnergyPhase.D2D_ACK, profile.relay_ack_uah, now)
            receiver.charge(EnergyPhase.D2D_ACK, profile.relay_ack_uah, now)
        else:
            channel = self.medium.channel
            if channel is None:
                charge_duration_s = profile.d2d_transfer_s
            else:
                # interference-aware mode: the transfer runs at the
                # Shannon rate the channel grants, and both sides pay
                # energy in proportion to the actual airtime (the fixed
                # per-message base charge is calibrated at d2d_transfer_s).
                grant = channel.begin_transfer(
                    sender.device_id,
                    receiver.device_id,
                    sender.position(now),
                    receiver.position(now),
                    size_bytes,
                    now,
                )
                transfer_latency_s = grant.duration_s
                charge_duration_s = grant.duration_s
                airtime_scale = grant.duration_s / profile.d2d_transfer_s
            coalesced = (
                now - receiver.last_data_rx_s <= profile.d2d_rx_coalesce_window_s
            )
            tx_full = profile.ue_forward_cost_uah(size_bytes, distance)
            rx_full = profile.relay_receive_cost_uah(size_bytes, coalesced)
            if channel is None:
                tx_uah = tx_full * tech.tx_scale
                rx_uah = rx_full * tech.rx_scale
            else:
                # airtime scales only the time-dependent base charge; the
                # per-byte slope already grows with payload size, and so
                # does the grant duration, so scaling the full cost would
                # make energy quadratic in size.
                tx_base = profile.ue_forward_cost_uah(0, distance)
                rx_base = profile.relay_receive_cost_uah(0, coalesced)
                tx_uah = (
                    tx_base * airtime_scale + (tx_full - tx_base)
                ) * tech.tx_scale
                rx_uah = (
                    rx_base * airtime_scale + (rx_full - rx_base)
                ) * tech.rx_scale
            receiver.last_data_rx_s = now
            sender.charge(
                EnergyPhase.D2D_FORWARD, tx_uah, now, duration_s=charge_duration_s
            )
            receiver.charge(
                EnergyPhase.D2D_RECEIVE, rx_uah, now, duration_s=charge_duration_s
            )

        def deliver() -> None:
            if not self.alive or lost:
                self.messages_lost += 1
                if on_result is not None:
                    on_result(False)
                return
            self.messages_delivered += 1
            self.bytes_transferred += size_bytes
            if receiver.on_message is not None:
                receiver.on_message(self, sender_id, payload, size_bytes)
            if on_result is not None:
                on_result(True)

        self.medium.sim.schedule(transfer_latency_s, deliver, name="d2d_deliver")
        return True

    def close(self, reason: str = "closed") -> None:
        """Tear the connection down; idempotent."""
        self.medium._break_connection(self, reason)


class _SortedCandidateCache:
    """Memo for the registration-order sort of scan candidate sets.

    The spatial index already caches the *unsorted* merged cell block per
    ``(cell, k)``; on static crowds every scan from the same neighbourhood
    then re-filtered and re-sorted that same block. This cache keys the
    finished (requester-filtered, registration-order-sorted) id list by
    ``(requester_id, cell, k)`` and stamps it with ``(index version,
    endpoint count)`` — any membership or bin change, or any new
    registration (which can grow the unindexable side set without
    touching the index), invalidates every entry. ``enabled`` exists so
    regression tests can force the re-sort path and prove identical
    output.
    """

    __slots__ = ("enabled", "_entries")

    def __init__(self) -> None:
        self.enabled = True
        self._entries: Dict[tuple, tuple] = {}

    def get(self, key: tuple, stamp: tuple) -> Optional[List[str]]:
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is not None and entry[0] == stamp:
            return entry[1]
        return None

    def put(self, key: tuple, stamp: tuple, ids: List[str]) -> None:
        if self.enabled:
            self._entries[key] = (stamp, ids)


class D2DMedium:
    """The shared D2D radio environment for one technology.

    Parameters
    ----------
    sim:
        Owning simulator.
    technology:
        Which D2D technology this medium models.
    profile:
        Energy calibration (shared with the cellular side).
    link_check_period_s:
        How often live connections re-check range under mobility.
    allow_undeployed:
        LTE Direct is modelled but flagged undeployed (the paper abandons
        it "for generality consideration"); using it requires opting in.
    group_aware:
        When true, connecting to a responder that already owns a live
        group is a *join* rather than a fresh formation: faster and
        cheaper on the responder side (no second GO negotiation). Off by
        default so the Table III/IV calibration — measured on pairwise
        formations — stays exact.
    group_join_discount:
        Fraction of the connection latency/energy a join costs.
    brute_force:
        Escape hatch: disable the spatial index and scan every endpoint
        on each discovery, exactly as the pre-index implementation did.
        Discovery results are byte-identical either way (same peers, same
        RSSI draws, same order) — the flag exists for the determinism
        guard and for A/B benchmarking, not because the results differ.
    index_refresh_s:
        How stale the binned positions of *moving* endpoints may get
        before a scan triggers an incremental re-bin pass. Between
        passes, queries widen by ``max mobile speed × staleness`` so a
        mover can never escape its candidate cells unseen. Static
        endpoints are binned once and never touched.
    channel:
        Optional interference-aware channel model. When set, data
        transfers run at Shannon-capacity rates under co-channel
        interference and bill energy per actual airtime; when ``None``
        (the default) the fixed latency/energy constants apply and
        behaviour is byte-identical to the pre-channel implementation.
    """

    def __init__(
        self,
        sim: Simulator,
        technology: D2DTechnology,
        profile: EnergyProfile = DEFAULT_PROFILE,
        link_check_period_s: float = 5.0,
        allow_undeployed: bool = False,
        group_aware: bool = False,
        group_join_discount: float = 0.5,
        brute_force: bool = False,
        index_refresh_s: float = 1.0,
        channel: Optional[ChannelModel] = None,
    ) -> None:
        if not 0.0 < group_join_discount <= 1.0:
            raise ValueError(
                f"group_join_discount must be in (0,1], got {group_join_discount}"
            )
        if not technology.deployed and not allow_undeployed:
            raise ValueError(
                f"{technology.name} is not deployed in the modelled network; "
                "pass allow_undeployed=True to simulate it anyway"
            )
        if index_refresh_s <= 0:
            raise ValueError(f"index_refresh_s must be positive, got {index_refresh_s}")
        self.sim = sim
        self.technology = technology
        self.profile = profile
        self.link_check_period_s = link_check_period_s
        self.group_aware = group_aware
        self.group_join_discount = group_join_discount
        self.brute_force = brute_force
        self.index_refresh_s = index_refresh_s
        self.channel = channel
        if channel is not None:
            # SINR evaluation reads co-channel transmitters' *current*
            # positions through this hook instead of the stale ones their
            # leases recorded at their own last transfer. Mobility models
            # are analytic, so the hook keeps channel mode replayable.
            channel.position_resolver = self._channel_position
        self.perf = PerfCounters()
        self._endpoints: Dict[str, D2DEndpoint] = {}
        #: device_id → fixed position for endpoints whose mobility model
        #: has a zero speed bound: their position never changes, so scans
        #: skip the per-candidate ``position(t)`` call entirely. Clearing
        #: this dict (tests do) falls back to live position lookups.
        self._static_pos: Dict[str, Position] = {}
        #: (requester, cell, k) → (stamp, sorted candidate ids); see
        #: ``_scan_candidates``. ``enabled=False`` forces full re-sorts.
        self._sorted_cache = _SortedCandidateCache()
        #: registration order per device — candidate sets from the spatial
        #: index are re-sorted by this so scans examine peers in exactly
        #: the order a full walk of ``_endpoints`` would, keeping RSSI
        #: noise draws and result ordering identical to brute force.
        self._seq: Dict[str, int] = {}
        self._index: Optional[SpatialIndex] = (
            None if brute_force else SpatialIndex(technology.max_range_m)
        )
        #: endpoints with a finite, nonzero speed bound (rebinned lazily)
        self._mobile: Dict[str, D2DEndpoint] = {}
        #: endpoints whose mobility model has no known speed bound: the
        #: index can't promise they stay near their bin, so scans always
        #: examine them exactly
        self._unindexed: Set[str] = set()
        self._max_mobile_speed = 0.0
        self._last_refresh_s = sim.now
        #: insertion-ordered live-connection set and per-endpoint adjacency
        #: (dicts as ordered sets: O(1) add/remove, stable iteration)
        self._connections: Dict[D2DConnection, None] = {}
        self._adjacency: Dict[str, Dict[D2DConnection, None]] = {}
        #: Optional veto on pairwise reachability (chaos link flap): called
        #: as ``link_gate(a_id, b_id)``; returning ``False`` makes the pair
        #: mutually unreachable — discovery hides them, connects fail, live
        #: links break at the next send or link check.
        self.link_gate: Optional[Callable[[str, str], bool]] = None
        # statistics
        self.discoveries = 0
        self.connections_established = 0
        self.connections_failed = 0
        self.connections_broken = 0
        self.group_joins = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, endpoint: D2DEndpoint) -> None:
        if endpoint.device_id in self._endpoints:
            raise ValueError(f"duplicate endpoint {endpoint.device_id}")
        device_id = endpoint.device_id
        self._seq[device_id] = len(self._endpoints)
        self._endpoints[device_id] = endpoint
        max_speed = endpoint.mobility.max_speed_m_s()
        if max_speed == 0.0:
            # a zero speed bound means the position is time-invariant:
            # memoise it once and spare every future scan the call.
            self._static_pos[device_id] = endpoint.position(self.sim.now)
        if self._index is None:
            return
        if max_speed is None:
            self._unindexed.add(device_id)
            return
        self._index.insert(device_id, endpoint.position(self.sim.now))
        if max_speed > 0.0:
            self._mobile[device_id] = endpoint
            if max_speed > self._max_mobile_speed:
                self._max_mobile_speed = max_speed

    def endpoint(self, device_id: str) -> D2DEndpoint:
        try:
            return self._endpoints[device_id]
        except KeyError:
            raise KeyError(f"no endpoint registered for {device_id!r}") from None

    def _channel_position(self, device_id: str, t: float) -> Optional[Position]:
        """Current position of a device for the channel's SINR refresh
        (``None`` for ids the medium no longer knows, e.g. after tests
        drop endpoints — the lease then keeps its last-known position)."""
        endpoint = self._endpoints.get(device_id)
        return None if endpoint is None else endpoint.position(t)

    def power_off(self, device_id: str) -> None:
        """Device died: drop its endpoint state and break its connections."""
        endpoint = self.endpoint(device_id)
        endpoint.powered_on = False
        endpoint.advertising = False
        for connection in list(self._adjacency.get(device_id, ())):
            self._break_connection(connection, "peer powered off")

    def power_on(self, device_id: str) -> None:
        """Device came back: restore radio power (advertising stays off)."""
        self.endpoint(device_id).powered_on = True

    def connections_of(self, device_id: str) -> List[D2DConnection]:
        self.endpoint(device_id)  # keep the unknown-device KeyError contract
        return list(self._adjacency.get(device_id, ()))

    def live_connections(self) -> List[D2DConnection]:
        """Snapshot of every currently established connection."""
        return list(self._connections)

    def link_allowed(self, a_id: str, b_id: str) -> bool:
        """Whether the gate (if any) permits the ``a``–``b`` pair."""
        return self.link_gate is None or self.link_gate(a_id, b_id)

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def discover(
        self,
        requester_id: str,
        on_complete: Callable[[List[PeerInfo]], None],
        rssi_noise: bool = True,
    ) -> None:
        """Scan for advertising peers in range.

        Completes after the technology's discovery latency. Only the
        requester pays a discovery charge (its active scan); answering a
        probe is a single frame and is booked as free. The responder's
        discovery-phase cost — its own find-phase participation — is paid
        when a connection is actually formed (see :meth:`connect`), which
        is exactly how the paper's 1:1 Table III measurement decomposes.
        """
        requester = self.endpoint(requester_id)
        if not requester.powered_on:
            raise D2DTransferError(f"{requester_id} is powered off")
        now = self.sim.now
        self.discoveries += 1
        tech = self.technology
        requester.charge(
            EnergyPhase.D2D_DISCOVERY,
            self.profile.ue_discovery_uah * tech.discovery_scale,
            now,
            duration_s=tech.discovery_latency_s,
        )

        def finish() -> None:
            t = self.sim.now
            rng = self.sim.rng.get("d2d-discovery") if rssi_noise else None
            found: List[PeerInfo] = []
            static_pos = self._static_pos
            origin = static_pos.get(requester_id)
            if origin is None:
                origin = requester.position(t)
            perf = self.perf
            perf.scans += 1
            # Hot loop: hoist everything invariant out of the candidate walk.
            link = tech.link
            probe = link.probe
            shadowed = link.shadowed
            estimate_distance = link.estimate_distance
            max_range = tech.max_range_m
            link_allowed = self.link_allowed
            append = found.append
            static_get = static_pos.get
            for peer in self._scan_candidates(requester_id, origin, t):
                if not (peer.advertising and peer.powered_on):
                    continue
                peer_pos = static_get(peer.device_id)
                if peer_pos is None:
                    peer_pos = peer.position(t)
                else:
                    perf.static_position_hits += 1
                distance = distance_between(origin, peer_pos)
                if distance > max_range:
                    continue
                mean_rssi = probe(distance)
                if mean_rssi is None:
                    continue
                if not link_allowed(requester_id, peer.device_id):
                    continue
                rssi = shadowed(mean_rssi, rng)
                append(
                    PeerInfo(
                        device_id=peer.device_id,
                        rssi_dbm=rssi,
                        estimated_distance_m=estimate_distance(rssi),
                        advertisement=peer.advertisement_view,
                    )
                )
            # reverse=True keeps insertion order for equal RSSI (stable
            # sort), exactly like the previous ascending negated-key sort.
            found.sort(key=_RSSI_KEY, reverse=True)
            perf.scan_peers_returned += len(found)
            on_complete(found)

        self.sim.schedule(tech.discovery_latency_s, finish, name="d2d_discover")

    def _scan_candidates(
        self, requester_id: str, origin: Position, t: float
    ) -> List[D2DEndpoint]:
        """Endpoints a scan must examine, in registration order.

        With the spatial index on, this is the union of the index's
        candidate cells (range + drift slack) and the always-checked
        unindexable set — a superset of every in-range peer, usually a
        tiny fraction of the crowd. Brute force (or no index) returns
        everyone. Registration-order iteration keeps the RSSI noise
        stream and the result ordering identical across both paths.
        """
        perf = self.perf
        index = self._index
        if index is None:
            perf.brute_force_scans += 1
            candidates = [
                peer
                for device_id, peer in self._endpoints.items()
                if device_id != requester_id
            ]
            perf.scan_candidates_examined += len(candidates)
            return candidates
        self._refresh_index(t)
        slack = self._max_mobile_speed * (t - self._last_refresh_s)
        reach = self.technology.max_range_m + slack
        # Incremental re-sort: the filtered, registration-order-sorted id
        # list for a (requester, cell block) pair is cached and reused
        # while neither the index nor the endpoint set has changed —
        # mirrors query_block's (cell, k) key so the cache is exact.
        cell = index._cell_of(origin)
        k = max(0, math.ceil(reach / index.cell_size_m))
        cache_key = (requester_id, cell, k)
        stamp = (index._version, len(self._endpoints))
        cached_ids = self._sorted_cache.get(cache_key, stamp)
        if cached_ids is not None:
            perf.sorted_cache_hits += 1
            ids = cached_ids
        else:
            # query_block returns a cached, shared list — never mutate it;
            # the requester filter below rebinds to a fresh list either way.
            ids = index.query_block(origin, self.technology.max_range_m, slack)
            if self._unindexed:
                merged = set(ids)
                merged.update(self._unindexed)
                ids = list(merged)
            ids = [device_id for device_id in ids if device_id != requester_id]
            ids.sort(key=self._seq.__getitem__)
            self._sorted_cache.put(cache_key, stamp, ids)
            # counted only on the miss path: a sorted-cache hit never
            # touches the index, so hits and queries stay disjoint.
            perf.index_queries += 1
        perf.index_block_cache_hits = index.block_cache_hits
        perf.scan_candidates_examined += len(ids)
        endpoints = self._endpoints
        return [endpoints[device_id] for device_id in ids]

    def _refresh_index(self, t: float) -> None:
        """Re-bin moving endpoints once their drift bound grows stale."""
        if not self._mobile or t - self._last_refresh_s < self.index_refresh_s:
            return
        index = self._index
        assert index is not None
        for device_id, endpoint in self._mobile.items():
            index.update(device_id, endpoint.position(t))
        self._last_refresh_s = t
        perf = self.perf
        perf.index_rebuild_passes += 1
        perf.index_updates = index.updates
        perf.index_moves = index.moves

    # ------------------------------------------------------------------
    # connection establishment
    # ------------------------------------------------------------------
    def connect(
        self,
        initiator_id: str,
        responder_id: str,
        on_complete: Callable[[Optional[D2DConnection]], None],
    ) -> None:
        """Establish a connection; ``on_complete(None)`` on failure.

        The responder pays its deferred discovery-phase charge here (its
        find-phase participation in the GO negotiation) plus connection;
        the initiator already paid discovery at scan time.
        """
        if initiator_id == responder_id:
            raise D2DTransferError(f"{initiator_id} cannot connect to itself")
        initiator = self.endpoint(initiator_id)
        responder = self.endpoint(responder_id)
        if not initiator.powered_on:
            raise D2DTransferError(f"{initiator_id} is powered off")
        now = self.sim.now
        tech = self.technology
        # joining an existing group skips the second GO negotiation
        is_join = self.group_aware and bool(self._adjacency.get(responder_id))
        join_scale = self.group_join_discount if is_join else 1.0
        if is_join:
            self.group_joins += 1
        connect_latency = tech.connection_latency_s * join_scale
        initiator.charge(
            EnergyPhase.D2D_CONNECTION,
            self.profile.ue_connection_uah * tech.connection_scale * join_scale,
            now,
            duration_s=connect_latency,
        )
        responder.charge(
            EnergyPhase.D2D_DISCOVERY,
            self.profile.relay_discovery_uah * tech.discovery_scale * join_scale,
            now,
            duration_s=tech.discovery_latency_s * join_scale,
        )
        responder.charge(
            EnergyPhase.D2D_CONNECTION,
            self.profile.relay_connection_uah * tech.connection_scale * join_scale,
            now,
            duration_s=connect_latency,
        )

        def finish() -> None:
            t = self.sim.now
            distance = distance_between(initiator.position(t), responder.position(t))
            if (
                not responder.powered_on
                or not initiator.powered_on
                or distance > tech.max_range_m
                or not tech.link.in_range(distance)
                or not self.link_allowed(initiator_id, responder_id)
            ):
                self.connections_failed += 1
                on_complete(None)
                return
            connection = D2DConnection(self, initiator, responder, t)
            self._connections[connection] = None
            self._adjacency.setdefault(initiator_id, {})[connection] = None
            self._adjacency.setdefault(responder_id, {})[connection] = None
            self.connections_established += 1
            connection._monitor = self.sim.every(
                self.link_check_period_s,
                self._check_link,
                connection,
                name="d2d_link_check",
            )
            on_complete(connection)

        self.sim.schedule(connect_latency, finish, name="d2d_connect")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_link(self, connection: D2DConnection) -> None:
        if not connection.alive:
            return
        if not self.link_allowed(
            connection.initiator.device_id, connection.responder.device_id
        ):
            self._break_connection(connection, "link down")
            return
        distance = connection.current_distance_m()
        if distance > self.technology.max_range_m or not self.technology.link.in_range(
            distance
        ):
            self._break_connection(connection, "out of range")

    def _break_connection(self, connection: D2DConnection, reason: str) -> None:
        if not connection.alive:
            return
        connection.alive = False
        if connection._monitor is not None:
            connection._monitor.stop()
            connection._monitor = None
        self._connections.pop(connection, None)
        for device_id in (connection.initiator.device_id, connection.responder.device_id):
            adjacency = self._adjacency.get(device_id)
            if adjacency is not None:
                adjacency.pop(connection, None)
                if not adjacency:
                    del self._adjacency[device_id]
        self.connections_broken += 1
        for endpoint in (connection.initiator, connection.responder):
            if endpoint.on_disconnect is not None:
                endpoint.on_disconnect(connection, reason)
