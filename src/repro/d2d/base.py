"""Technology-generic D2D medium, endpoints and connections.

One :class:`D2DMedium` per simulation models the shared radio environment
for one D2D technology: who can discover whom (range + advertisement),
connection establishment, range-limited transfers with distance-dependent
energy, and link monitoring that breaks connections when devices drift
apart (the failure mode the paper's feedback mechanism exists for).

Energy conventions follow the paper's Table III: the *initiator* of
discovery/connection pays the UE-side charge, the responder the relay-side
charge; a message sender pays the forward charge (distance-scaled, Fig. 12)
and the receiver the receive charge (Table IV slope).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.d2d.link import LinkModel
from repro.energy.model import EnergyModel, EnergyPhase
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.mobility.models import MobilityModel
from repro.mobility.space import Position, distance_between
from repro.sim.engine import PeriodicProcess, Simulator


class D2DTransferError(RuntimeError):
    """Raised for illegal transfer attempts (closed connection, bad peer)."""


@dataclasses.dataclass(frozen=True)
class D2DTechnology:
    """Capabilities and relative energy cost of one D2D technology.

    Energy scales are multipliers applied to the Wi-Fi Direct-calibrated
    base costs in :class:`~repro.energy.profiles.EnergyProfile` (so
    Wi-Fi Direct itself uses 1.0 everywhere).
    """

    name: str
    max_range_m: float
    discovery_latency_s: float
    connection_latency_s: float
    transfer_latency_s: float
    deployed: bool = True  # LTE Direct is modelled but gated (Sec. IV-A)
    discovery_scale: float = 1.0
    connection_scale: float = 1.0
    tx_scale: float = 1.0
    rx_scale: float = 1.0
    link: LinkModel = dataclasses.field(default_factory=LinkModel)


@dataclasses.dataclass(frozen=True)
class PeerInfo:
    """What a discovery scan reveals about one nearby peer."""

    device_id: str
    rssi_dbm: float
    estimated_distance_m: float
    advertisement: Mapping[str, Any]


class D2DEndpoint:
    """One device's attachment to the D2D medium.

    ``advertisement`` is the small service record other devices see during
    discovery (role, remaining relay capacity, …). ``on_message`` receives
    ``(connection, sender_id, payload, size_bytes)``; ``on_disconnect``
    receives ``(connection, reason)``.
    """

    def __init__(
        self,
        device_id: str,
        mobility: MobilityModel,
        energy: Optional[EnergyModel] = None,
        advertisement: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.device_id = device_id
        self.mobility = mobility
        self.energy = energy
        self.advertisement: Dict[str, Any] = dict(advertisement or {})
        self.advertising = False
        self.powered_on = True
        #: Time of the last data receive — drives wake coalescing.
        self.last_data_rx_s = float("-inf")
        self.on_message: Optional[Callable[["D2DConnection", str, Any, int], None]] = None
        self.on_disconnect: Optional[Callable[["D2DConnection", str], None]] = None

    def position(self, t: float) -> Position:
        return self.mobility.position(t)

    def charge(
        self, phase: EnergyPhase, uah: float, time_s: float, duration_s: float = 0.0
    ) -> None:
        if self.energy is not None:
            self.energy.charge(phase, uah, time_s=time_s, duration_s=duration_s)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"D2DEndpoint({self.device_id!r}, advertising={self.advertising})"


class D2DConnection:
    """An established point-to-point D2D link.

    ``group_owner_id`` records which side won the Wi-Fi Direct GO
    negotiation (from the advertised ``go_intent`` values; the initiator
    is assumed to be a UE pinning intent 0 unless it advertises
    otherwise), matching the paper's Sec. IV-C setup where relays start at
    intent 15.
    """

    def __init__(
        self,
        medium: "D2DMedium",
        initiator: D2DEndpoint,
        responder: D2DEndpoint,
        established_at_s: float,
    ) -> None:
        self.medium = medium
        self.initiator = initiator
        self.responder = responder
        self.established_at_s = established_at_s
        initiator_intent = int(initiator.advertisement.get("go_intent", 0))
        responder_intent = int(responder.advertisement.get("go_intent", 0))
        self.group_owner_id = (
            initiator.device_id
            if initiator_intent > responder_intent
            else responder.device_id
        )
        self.alive = True
        self.messages_delivered = 0
        self.messages_lost = 0
        self.bytes_transferred = 0
        self._monitor: Optional[PeriodicProcess] = None

    # ------------------------------------------------------------------
    def peer_of(self, device_id: str) -> D2DEndpoint:
        """The endpoint on the other side of ``device_id``."""
        if device_id == self.initiator.device_id:
            return self.responder
        if device_id == self.responder.device_id:
            return self.initiator
        raise D2DTransferError(f"{device_id} is not part of this connection")

    def endpoint_of(self, device_id: str) -> D2DEndpoint:
        if device_id == self.initiator.device_id:
            return self.initiator
        if device_id == self.responder.device_id:
            return self.responder
        raise D2DTransferError(f"{device_id} is not part of this connection")

    def current_distance_m(self) -> float:
        now = self.medium.sim.now
        return distance_between(self.initiator.position(now), self.responder.position(now))

    @property
    def duration_s(self) -> float:
        return self.medium.sim.now - self.established_at_s

    # ------------------------------------------------------------------
    def send(
        self,
        sender_id: str,
        size_bytes: int,
        payload: Any = None,
        on_result: Optional[Callable[[bool], None]] = None,
        control: bool = False,
    ) -> bool:
        """Transfer ``payload`` to the peer.

        Returns ``True`` if the transfer was started (delivery happens one
        transfer-latency later); ``False`` if the link was found dead or out
        of range — in which case the connection is torn down and
        ``on_result(False)`` fires immediately.

        ``control`` marks tiny protocol messages (feedback acks): they use
        the small fixed ack charge instead of the full forward/receive cost.
        """
        if size_bytes < 0:
            raise D2DTransferError(f"size_bytes must be non-negative: {size_bytes}")
        sender = self.endpoint_of(sender_id)
        receiver = self.peer_of(sender_id)
        now = self.medium.sim.now
        if not self.alive or not sender.powered_on or not receiver.powered_on:
            self.medium._break_connection(self, "peer unavailable")
            if on_result is not None:
                on_result(False)
            return False
        if not self.medium.link_allowed(sender.device_id, receiver.device_id):
            self.medium._break_connection(self, "link down")
            if on_result is not None:
                on_result(False)
            return False
        distance = self.current_distance_m()
        if distance > self.medium.technology.max_range_m or not self.medium.technology.link.in_range(
            distance
        ):
            self.medium._break_connection(self, "out of range")
            if on_result is not None:
                on_result(False)
            return False

        profile = self.medium.profile
        tech = self.medium.technology
        # near the coverage edge, frames are lost probabilistically (PER);
        # TX/RX energy is still spent — the frame went out, it just didn't
        # arrive. Zero inside comfortable range, so calibrated experiments
        # at 1-15 m are unaffected.
        per = tech.link.packet_error_rate(distance)
        lost = per > 0.0 and self.medium.sim.rng.get("d2d-loss").random() < per
        if control:
            sender.charge(EnergyPhase.D2D_ACK, profile.relay_ack_uah, now)
            receiver.charge(EnergyPhase.D2D_ACK, profile.relay_ack_uah, now)
        else:
            tx_uah = profile.ue_forward_cost_uah(size_bytes, distance) * tech.tx_scale
            coalesced = (
                now - receiver.last_data_rx_s <= profile.d2d_rx_coalesce_window_s
            )
            rx_uah = profile.relay_receive_cost_uah(size_bytes, coalesced) * tech.rx_scale
            receiver.last_data_rx_s = now
            sender.charge(
                EnergyPhase.D2D_FORWARD, tx_uah, now, duration_s=profile.d2d_transfer_s
            )
            receiver.charge(
                EnergyPhase.D2D_RECEIVE, rx_uah, now, duration_s=profile.d2d_transfer_s
            )

        def deliver() -> None:
            if not self.alive or lost:
                self.messages_lost += 1
                if on_result is not None:
                    on_result(False)
                return
            self.messages_delivered += 1
            self.bytes_transferred += size_bytes
            if receiver.on_message is not None:
                receiver.on_message(self, sender_id, payload, size_bytes)
            if on_result is not None:
                on_result(True)

        self.medium.sim.schedule(tech.transfer_latency_s, deliver, name="d2d_deliver")
        return True

    def close(self, reason: str = "closed") -> None:
        """Tear the connection down; idempotent."""
        self.medium._break_connection(self, reason)


class D2DMedium:
    """The shared D2D radio environment for one technology.

    Parameters
    ----------
    sim:
        Owning simulator.
    technology:
        Which D2D technology this medium models.
    profile:
        Energy calibration (shared with the cellular side).
    link_check_period_s:
        How often live connections re-check range under mobility.
    allow_undeployed:
        LTE Direct is modelled but flagged undeployed (the paper abandons
        it "for generality consideration"); using it requires opting in.
    group_aware:
        When true, connecting to a responder that already owns a live
        group is a *join* rather than a fresh formation: faster and
        cheaper on the responder side (no second GO negotiation). Off by
        default so the Table III/IV calibration — measured on pairwise
        formations — stays exact.
    group_join_discount:
        Fraction of the connection latency/energy a join costs.
    """

    def __init__(
        self,
        sim: Simulator,
        technology: D2DTechnology,
        profile: EnergyProfile = DEFAULT_PROFILE,
        link_check_period_s: float = 5.0,
        allow_undeployed: bool = False,
        group_aware: bool = False,
        group_join_discount: float = 0.5,
    ) -> None:
        if not 0.0 < group_join_discount <= 1.0:
            raise ValueError(
                f"group_join_discount must be in (0,1], got {group_join_discount}"
            )
        if not technology.deployed and not allow_undeployed:
            raise ValueError(
                f"{technology.name} is not deployed in the modelled network; "
                "pass allow_undeployed=True to simulate it anyway"
            )
        self.sim = sim
        self.technology = technology
        self.profile = profile
        self.link_check_period_s = link_check_period_s
        self.group_aware = group_aware
        self.group_join_discount = group_join_discount
        self._endpoints: Dict[str, D2DEndpoint] = {}
        self._connections: List[D2DConnection] = []
        #: Optional veto on pairwise reachability (chaos link flap): called
        #: as ``link_gate(a_id, b_id)``; returning ``False`` makes the pair
        #: mutually unreachable — discovery hides them, connects fail, live
        #: links break at the next send or link check.
        self.link_gate: Optional[Callable[[str, str], bool]] = None
        # statistics
        self.discoveries = 0
        self.connections_established = 0
        self.connections_failed = 0
        self.connections_broken = 0
        self.group_joins = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, endpoint: D2DEndpoint) -> None:
        if endpoint.device_id in self._endpoints:
            raise ValueError(f"duplicate endpoint {endpoint.device_id}")
        self._endpoints[endpoint.device_id] = endpoint

    def endpoint(self, device_id: str) -> D2DEndpoint:
        try:
            return self._endpoints[device_id]
        except KeyError:
            raise KeyError(f"no endpoint registered for {device_id!r}") from None

    def power_off(self, device_id: str) -> None:
        """Device died: drop its endpoint state and break its connections."""
        endpoint = self.endpoint(device_id)
        endpoint.powered_on = False
        endpoint.advertising = False
        for connection in [c for c in self._connections if endpoint in (c.initiator, c.responder)]:
            self._break_connection(connection, "peer powered off")

    def power_on(self, device_id: str) -> None:
        """Device came back: restore radio power (advertising stays off)."""
        self.endpoint(device_id).powered_on = True

    def connections_of(self, device_id: str) -> List[D2DConnection]:
        endpoint = self.endpoint(device_id)
        return [c for c in self._connections if endpoint in (c.initiator, c.responder)]

    def live_connections(self) -> List[D2DConnection]:
        """Snapshot of every currently established connection."""
        return list(self._connections)

    def link_allowed(self, a_id: str, b_id: str) -> bool:
        """Whether the gate (if any) permits the ``a``–``b`` pair."""
        return self.link_gate is None or self.link_gate(a_id, b_id)

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def discover(
        self,
        requester_id: str,
        on_complete: Callable[[List[PeerInfo]], None],
        rssi_noise: bool = True,
    ) -> None:
        """Scan for advertising peers in range.

        Completes after the technology's discovery latency. Only the
        requester pays a discovery charge (its active scan); answering a
        probe is a single frame and is booked as free. The responder's
        discovery-phase cost — its own find-phase participation — is paid
        when a connection is actually formed (see :meth:`connect`), which
        is exactly how the paper's 1:1 Table III measurement decomposes.
        """
        requester = self.endpoint(requester_id)
        if not requester.powered_on:
            raise D2DTransferError(f"{requester_id} is powered off")
        now = self.sim.now
        self.discoveries += 1
        tech = self.technology
        requester.charge(
            EnergyPhase.D2D_DISCOVERY,
            self.profile.ue_discovery_uah * tech.discovery_scale,
            now,
            duration_s=tech.discovery_latency_s,
        )

        def finish() -> None:
            t = self.sim.now
            rng = self.sim.rng.get("d2d-discovery") if rssi_noise else None
            found: List[PeerInfo] = []
            origin = requester.position(t)
            for peer in self._endpoints.values():
                if peer.device_id == requester_id:
                    continue
                if not (peer.advertising and peer.powered_on):
                    continue
                distance = distance_between(origin, peer.position(t))
                if distance > tech.max_range_m or not tech.link.in_range(distance):
                    continue
                if not self.link_allowed(requester_id, peer.device_id):
                    continue
                rssi = tech.link.rssi(distance, rng)
                found.append(
                    PeerInfo(
                        device_id=peer.device_id,
                        rssi_dbm=rssi,
                        estimated_distance_m=tech.link.estimate_distance(rssi),
                        advertisement=dict(peer.advertisement),
                    )
                )
            found.sort(key=lambda p: -p.rssi_dbm)
            on_complete(found)

        self.sim.schedule(tech.discovery_latency_s, finish, name="d2d_discover")

    # ------------------------------------------------------------------
    # connection establishment
    # ------------------------------------------------------------------
    def connect(
        self,
        initiator_id: str,
        responder_id: str,
        on_complete: Callable[[Optional[D2DConnection]], None],
    ) -> None:
        """Establish a connection; ``on_complete(None)`` on failure.

        The responder pays its deferred discovery-phase charge here (its
        find-phase participation in the GO negotiation) plus connection;
        the initiator already paid discovery at scan time.
        """
        if initiator_id == responder_id:
            raise D2DTransferError(f"{initiator_id} cannot connect to itself")
        initiator = self.endpoint(initiator_id)
        responder = self.endpoint(responder_id)
        if not initiator.powered_on:
            raise D2DTransferError(f"{initiator_id} is powered off")
        now = self.sim.now
        tech = self.technology
        # joining an existing group skips the second GO negotiation
        is_join = self.group_aware and bool(self.connections_of(responder_id))
        join_scale = self.group_join_discount if is_join else 1.0
        if is_join:
            self.group_joins += 1
        connect_latency = tech.connection_latency_s * join_scale
        initiator.charge(
            EnergyPhase.D2D_CONNECTION,
            self.profile.ue_connection_uah * tech.connection_scale * join_scale,
            now,
            duration_s=connect_latency,
        )
        responder.charge(
            EnergyPhase.D2D_DISCOVERY,
            self.profile.relay_discovery_uah * tech.discovery_scale * join_scale,
            now,
            duration_s=tech.discovery_latency_s * join_scale,
        )
        responder.charge(
            EnergyPhase.D2D_CONNECTION,
            self.profile.relay_connection_uah * tech.connection_scale * join_scale,
            now,
            duration_s=connect_latency,
        )

        def finish() -> None:
            t = self.sim.now
            distance = distance_between(initiator.position(t), responder.position(t))
            if (
                not responder.powered_on
                or not initiator.powered_on
                or distance > tech.max_range_m
                or not tech.link.in_range(distance)
                or not self.link_allowed(initiator_id, responder_id)
            ):
                self.connections_failed += 1
                on_complete(None)
                return
            connection = D2DConnection(self, initiator, responder, t)
            self._connections.append(connection)
            self.connections_established += 1
            connection._monitor = self.sim.every(
                self.link_check_period_s,
                self._check_link,
                connection,
                name="d2d_link_check",
            )
            on_complete(connection)

        self.sim.schedule(connect_latency, finish, name="d2d_connect")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_link(self, connection: D2DConnection) -> None:
        if not connection.alive:
            return
        if not self.link_allowed(
            connection.initiator.device_id, connection.responder.device_id
        ):
            self._break_connection(connection, "link down")
            return
        distance = connection.current_distance_m()
        if distance > self.technology.max_range_m or not self.technology.link.in_range(
            distance
        ):
            self._break_connection(connection, "out of range")

    def _break_connection(self, connection: D2DConnection, reason: str) -> None:
        if not connection.alive:
            return
        connection.alive = False
        if connection._monitor is not None:
            connection._monitor.stop()
            connection._monitor = None
        if connection in self._connections:
            self._connections.remove(connection)
        self.connections_broken += 1
        for endpoint in (connection.initiator, connection.responder):
            if endpoint.on_disconnect is not None:
                endpoint.on_disconnect(connection, reason)
