"""Radio link model: RSSI from distance and back.

The paper's matching mechanism ranks relays by signal strength observed
during discovery and treats it as a distance proxy ("We can obtain the
relative distances between the UE and the discovered relays through signal
strength in D2D discovery", Sec. III-C). We model that with the standard
log-distance path-loss formula and an inverse for distance estimation.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Optional


def rssi_at(
    distance_m: float,
    tx_power_dbm: float = 15.0,
    path_loss_at_ref_db: float = 40.0,
    path_loss_exponent: float = 3.0,
    reference_m: float = 1.0,
) -> float:
    """Received signal strength (dBm) at ``distance_m`` (no fading)."""
    if distance_m < 0:
        raise ValueError(f"distance must be non-negative, got {distance_m}")
    d = max(distance_m, 0.01)  # avoid log(0) for co-located devices
    path_loss = path_loss_at_ref_db + 10.0 * path_loss_exponent * math.log10(
        d / reference_m
    )
    return tx_power_dbm - path_loss


def distance_from_rssi(
    rssi_dbm: float,
    tx_power_dbm: float = 15.0,
    path_loss_at_ref_db: float = 40.0,
    path_loss_exponent: float = 3.0,
    reference_m: float = 1.0,
) -> float:
    """Invert :func:`rssi_at`: estimated distance (m) from an RSSI reading."""
    path_loss = tx_power_dbm - rssi_dbm
    exponent = (path_loss - path_loss_at_ref_db) / (10.0 * path_loss_exponent)
    return reference_m * 10.0**exponent


@dataclasses.dataclass(frozen=True)
class LinkModel:
    """Parameters of one radio link model plus fading and loss behaviour."""

    tx_power_dbm: float = 15.0
    path_loss_at_ref_db: float = 40.0
    path_loss_exponent: float = 3.0
    reference_m: float = 1.0
    shadowing_sigma_db: float = 2.0  # log-normal shadowing on measurements
    sensitivity_dbm: float = -85.0  # below this the link is unusable

    def rssi(self, distance_m: float, rng: Optional[random.Random] = None) -> float:
        """RSSI at ``distance_m``, with shadowing noise when ``rng`` given."""
        value = rssi_at(
            distance_m,
            self.tx_power_dbm,
            self.path_loss_at_ref_db,
            self.path_loss_exponent,
            self.reference_m,
        )
        if rng is not None and self.shadowing_sigma_db > 0:
            value += rng.gauss(0.0, self.shadowing_sigma_db)
        return value

    def probe(self, distance_m: float) -> Optional[float]:
        """One-pass :meth:`in_range` + mean :meth:`rssi` for the scan path.

        ``None`` when the mean RSSI at ``distance_m`` is below sensitivity
        (out of range), else the mean RSSI. Computes the path-loss formula
        once where separate ``in_range()`` + ``rssi()`` calls compute it
        twice. No noise: callers apply :meth:`shadowed` only after the
        candidate passes every filter, so the RNG draw sequence matches
        the separate-call code exactly.
        """
        value = rssi_at(
            distance_m,
            self.tx_power_dbm,
            self.path_loss_at_ref_db,
            self.path_loss_exponent,
            self.reference_m,
        )
        return None if value < self.sensitivity_dbm else value

    def probe_block(self, distances_m) -> "list[Optional[float]]":
        """Batched :meth:`probe` over a whole candidate block.

        One call per scan instead of one per peer: the model fields and
        ``math.log10`` are hoisted out of the loop, which is where the
        per-call cost of :meth:`probe` actually goes. The per-element
        arithmetic is kept as the *same scalar IEEE-754 sequence* as
        :func:`rssi_at` on purpose — ``numpy.log10`` is not guaranteed
        correctly rounded, and the sensitivity cutoff sits on the result,
        so a last-ulp difference could flip a candidate in or out of
        range and desynchronize the RSSI noise stream between the
        vectorized and scalar scan paths.
        """
        tx = self.tx_power_dbm
        ref_db = self.path_loss_at_ref_db
        slope = 10.0 * self.path_loss_exponent
        ref_m = self.reference_m
        floor = self.sensitivity_dbm
        log10 = math.log10
        out: list = []
        append = out.append
        for distance_m in distances_m:
            d = distance_m if distance_m > 0.01 else 0.01
            value = tx - (ref_db + slope * log10(d / ref_m))
            append(None if value < floor else value)
        return out

    def shadowed(
        self, mean_rssi_dbm: float, rng: Optional[random.Random] = None
    ) -> float:
        """Apply log-normal shadowing to a mean RSSI from :meth:`probe`."""
        if rng is not None and self.shadowing_sigma_db > 0:
            return mean_rssi_dbm + rng.gauss(0.0, self.shadowing_sigma_db)
        return mean_rssi_dbm

    def estimate_distance(self, rssi_dbm: float) -> float:
        """Distance estimate from a (possibly noisy) RSSI reading."""
        return distance_from_rssi(
            rssi_dbm,
            self.tx_power_dbm,
            self.path_loss_at_ref_db,
            self.path_loss_exponent,
            self.reference_m,
        )

    def max_range_m(self) -> float:
        """Distance at which mean RSSI hits the sensitivity floor."""
        return self.estimate_distance(self.sensitivity_dbm)

    def in_range(self, distance_m: float) -> bool:
        """Whether the mean RSSI at this distance is above sensitivity."""
        return rssi_at(
            distance_m,
            self.tx_power_dbm,
            self.path_loss_at_ref_db,
            self.path_loss_exponent,
            self.reference_m,
        ) >= self.sensitivity_dbm

    def packet_error_rate(self, distance_m: float) -> float:
        """Crude PER: 0 in close range, rising near the edge of coverage."""
        margin = self.rssi(distance_m) - self.sensitivity_dbm
        if margin >= 10.0:
            return 0.0
        if margin <= 0.0:
            return 1.0
        return (10.0 - margin) / 10.0 * 0.3  # ≤ 30 % PER before hard loss
