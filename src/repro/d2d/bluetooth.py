"""Bluetooth D2D technology model.

Sec. IV-A: "while Bluetooth indeed has the potential to complete D2D
communication with low energy, its communication range is typically less
than 10 m, too limited to meet our need." Modelled with cheaper per-phase
energy but a hard ~10 m range and slower transfers — the ablation bench
shows where this trade-off loses to Wi-Fi Direct in a spread-out crowd.
"""

from __future__ import annotations

from repro.d2d.base import D2DTechnology
from repro.d2d.link import LinkModel

BLUETOOTH = D2DTechnology(
    name="bluetooth",
    max_range_m=10.0,
    discovery_latency_s=5.0,  # inquiry scans are slow
    connection_latency_s=2.0,
    transfer_latency_s=0.2,
    deployed=True,
    discovery_scale=0.45,
    connection_scale=0.5,
    tx_scale=0.4,
    rx_scale=0.4,
    link=LinkModel(
        tx_power_dbm=4.0,  # class 2 radio
        path_loss_at_ref_db=40.0,
        path_loss_exponent=3.0,
        shadowing_sigma_db=2.0,
        sensitivity_dbm=-70.0,
    ),
)
