"""Wi-Fi Direct: the technology the paper's prototype uses.

Sec. IV-A picks Wi-Fi Direct over Bluetooth (too short-ranged) and LTE
Direct (not deployed) for its "ideal communication distance and
generality". The energy calibration in
:class:`~repro.energy.profiles.EnergyProfile` *is* Wi-Fi Direct, so all
scales here are 1.0.

This module also implements the group-owner (GO) negotiation the paper's
implementation section describes: relays start with the maximum GO intent
(15) and the framework "reduce[s] groupOwnerIntend proportionally until 0
while relay collects heartbeat messages", which load-balances group
ownership away from already-busy relays; UEs advertise intent 0.
"""

from __future__ import annotations

from repro.d2d.base import D2DTechnology
from repro.d2d.link import LinkModel

#: Maximum group-owner intent value in the Android Wi-Fi P2P API.
MAX_GO_INTENT = 15

WIFI_DIRECT = D2DTechnology(
    name="wifi-direct",
    max_range_m=50.0,
    discovery_latency_s=2.0,
    connection_latency_s=1.5,
    transfer_latency_s=0.05,
    deployed=True,
    discovery_scale=1.0,
    connection_scale=1.0,
    tx_scale=1.0,
    rx_scale=1.0,
    link=LinkModel(
        tx_power_dbm=15.0,
        path_loss_at_ref_db=40.0,
        path_loss_exponent=3.0,
        shadowing_sigma_db=2.0,
        sensitivity_dbm=-85.0,
    ),
)


class GroupOwnerNegotiator:
    """Per-device Wi-Fi Direct group-owner intent management.

    A relay starts at intent 15 and decays linearly toward 0 as it fills
    its collection capacity ``M``; a fresh relay therefore wins GO
    negotiation against a loaded one, spreading UEs across relays.
    """

    def __init__(self, is_relay: bool, capacity: int = 0) -> None:
        if is_relay and capacity <= 0:
            raise ValueError("a relay negotiator needs a positive capacity")
        self.is_relay = is_relay
        self.capacity = capacity
        self._collected = 0

    @property
    def collected(self) -> int:
        return self._collected

    def note_collected(self, n: int = 1) -> None:
        """Record ``n`` more collected heartbeats (caps at capacity)."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._collected = min(self.capacity, self._collected + n) if self.is_relay else 0

    def reset_period(self) -> None:
        """New heartbeat period: the collection buffer was flushed."""
        self._collected = 0

    @property
    def intent(self) -> int:
        """Current GO intent in [0, 15]."""
        if not self.is_relay:
            return 0
        free_fraction = 1.0 - self._collected / self.capacity
        return int(round(MAX_GO_INTENT * free_fraction))

    @staticmethod
    def negotiate(intent_a: int, intent_b: int) -> int:
        """Which side becomes group owner: 0 for a, 1 for b.

        Higher intent wins; the Wi-Fi Direct spec breaks a 15/15 tie by a
        random bit, but the framework never produces one (UEs pin 0), so we
        deterministically favour side a for reproducibility.
        """
        for intent in (intent_a, intent_b):
            if not 0 <= intent <= MAX_GO_INTENT:
                raise ValueError(f"GO intent out of range: {intent}")
        return 0 if intent_a >= intent_b else 1
