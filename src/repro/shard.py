"""Cell-sharded event kernel: city-scale crowds across worker processes.

The single :class:`~repro.sim.engine.Simulator` kernel is exact but
serial: a 5000-device storm fires every scan, beat, and RRC timer through
one heap. This module partitions that work by **serving cell** — the same
partition :mod:`repro.cellular.network` defines — so each shard owns the
devices homed in its cells and runs them on a private simulator, either
in-process (``backend="serial"``) or on one worker process per shard
(``backend="process"``).

Conservative-time sync
----------------------
Shards advance in lock-step windows of ``sync_window_s`` simulated
seconds. Device state never crosses a shard boundary mid-window; at each
window boundary every shard

1. applies the **ghost endpoints** routed to it at the previous boundary
   (frozen-position snapshots of foreign advertising devices near the
   border),
2. runs its simulator to the boundary,
3. runs a handover pass (nearest-cell reattachment, rebinding each
   moved device's modem to the new cell's base station and ledger), and
4. reports its own advertising devices that sit within the ghost margin
   of a foreign shard's cells.

The parent gathers all reports (a barrier), routes them by the shard
plan, and hands each shard its ghost list for the next window. Ghosts are
discovery-visible only: they advertise ``capacity_remaining: 0`` so the
relay matcher always rejects them, and their mobility reports an unknown
max speed so the spatial index treats them as unindexable exact-check
endpoints (the same churn path real unindexable devices take).

Determinism contract
--------------------
A sharded run is **not** byte-identical to the unsharded
:func:`~repro.scenarios.run_crowd_scenario` — each shard draws from its
own ``child_seed(seed, "shard:i")`` RNG streams, and border discovery
sees frozen ghosts instead of live peers. What is pinned, and what the
determinism guard asserts, is

- ``serial`` ≡ ``process``: the two backends execute the identical
  window protocol in the identical order, so their merged
  :meth:`~repro.metrics.RunMetrics.to_comparable_dict` match byte for
  byte, and
- replay: the same ``(params, seed)`` always reproduces the same merged
  metrics, whichever backend ran it.

Every shard rebuilds the full crowd layout (placement, roles, phases)
from the master seed's named streams, then instantiates only its own
devices — no layout data ever needs to cross a process boundary.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cellular.network import CellularNetwork, grid_cell_positions
from repro.cellular.rrc import WCDMA_PROFILE
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.core.matching import MatchConfig
from repro.core.scheduler import SchedulerConfig
from repro.d2d.base import D2DEndpoint, D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.energy.model import EnergyModel
from repro.energy.profiles import DEFAULT_PROFILE
from repro.metrics import DeliveryMetrics, RunMetrics, collect_metrics
from repro.mobility.models import MobilityModel, place_crowd
from repro.mobility.space import Arena, Position, distance_between
from repro.sim.engine import Simulator
from repro.sim.rng import child_seed, make_rng
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

#: Matches :data:`repro.scenarios.DEFAULT_DRAIN_S` (not imported to keep
#: this module import-light for spawned workers).
_DEFAULT_DRAIN_S = 30.0


# ----------------------------------------------------------------------
# partition plan
# ----------------------------------------------------------------------
class ShardPlan:
    """The static cell-to-shard partition every participant agrees on.

    Cells form a ``cells_x × cells_y`` grid over the arena (see
    :func:`repro.cellular.network.grid_cell_positions`); shard ownership
    is by **column band**, so shard boundaries are vertical lines and a
    device's home shard depends only on its x position at t=0.
    """

    def __init__(
        self,
        n_shards: int,
        cells_x: int,
        cells_y: int,
        arena_w: float,
        arena_h: float,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if cells_x < n_shards:
            raise ValueError(
                f"need at least one cell column per shard: "
                f"cells_x={cells_x} < n_shards={n_shards}"
            )
        self.n_shards = n_shards
        self.cells_x = cells_x
        self.cells_y = cells_y
        self.cell_positions: List[Position] = grid_cell_positions(
            arena_w, arena_h, cells_x, cells_y
        )
        #: cell index -> owning shard (column band partition)
        self.cell_shards: List[int] = [
            (c % cells_x) * n_shards // cells_x
            for c in range(len(self.cell_positions))
        ]
        self._shard_cells: List[List[Position]] = [[] for _ in range(n_shards)]
        for position, shard in zip(self.cell_positions, self.cell_shards):
            self._shard_cells[shard].append(position)

    def nearest_cell(self, position: Position) -> int:
        positions = self.cell_positions
        return min(
            range(len(positions)),
            key=lambda c: distance_between(positions[c], position),
        )

    def shard_of_position(self, position: Position) -> int:
        """Home shard of a device standing at ``position``."""
        return self.cell_shards[self.nearest_cell(position)]

    def border_shards(
        self, position: Position, own_shard: int, margin_m: float
    ) -> List[int]:
        """Foreign shards that should see a ghost of this device.

        A device borders shard ``j`` when its distance to ``j``'s nearest
        cell exceeds its distance to the overall nearest cell by at most
        ``2 × margin_m`` — twice the D2D range, so any foreign device it
        could possibly reach lives in a shard that received its ghost.
        """
        d_best = min(
            distance_between(cell, position) for cell in self.cell_positions
        )
        out: List[int] = []
        for j in range(self.n_shards):
            if j == own_shard:
                continue
            d_j = min(
                distance_between(cell, position) for cell in self._shard_cells[j]
            )
            if d_j - d_best <= 2.0 * margin_m:
                out.append(j)
        return out


@dataclasses.dataclass(frozen=True)
class CrowdShardParams:
    """Plain-scalar description of one sharded crowd run.

    Frozen and picklable on purpose: this is the *only* object shipped to
    worker processes — each worker rebuilds its entire world from it.
    ``storm_scan_period_s`` replaces the unsharded runner's ``pre_run``
    callable (unpicklable) with the one storm knob the benches use.
    """

    n_devices: int = 40
    relay_fraction: float = 0.2
    duration_s: float = 1800.0
    arena_w: float = 60.0
    arena_h: float = 60.0
    hotspots: int = 3
    hotspot_spread_m: float = 8.0
    mobile_fraction: float = 0.0
    seed: int = 0
    capacity: int = 10
    relay_selection: str = "roundrobin"
    drain_s: float = _DEFAULT_DRAIN_S
    heartbeat_period_s: Optional[float] = None
    storm_scan_period_s: Optional[float] = None
    n_shards: int = 2
    cells_x: int = 4
    cells_y: int = 2
    sync_window_s: float = 5.0
    ghost_margin_m: float = WIFI_DIRECT.max_range_m

    def plan(self) -> ShardPlan:
        return ShardPlan(
            self.n_shards, self.cells_x, self.cells_y,
            self.arena_w, self.arena_h,
        )


class GhostMobility(MobilityModel):
    """Frozen-position snapshot of a foreign-shard device.

    Inherits ``max_speed_m_s() -> None`` deliberately: the real device
    *does* move between sync windows but this shard cannot see how fast,
    so the spatial index must treat the ghost as unindexable and
    exact-check it on every scan.
    """

    def __init__(self, position: Position) -> None:
        self._position = (float(position[0]), float(position[1]))

    def position(self, t: float) -> Position:
        return self._position

    def velocity(self, t: float) -> Tuple[float, float]:
        return (0.0, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GhostMobility({self._position})"


# ----------------------------------------------------------------------
# per-shard world
# ----------------------------------------------------------------------
def _relay_indices(
    params: CrowdShardParams, mobilities: Sequence[MobilityModel]
) -> set:
    """Global relay assignment, identical in every shard.

    Mirrors :func:`repro.scenarios._select_relay_indices`, but draws the
    random strategy's RNG from ``make_rng(seed, "relay-selection")``
    directly — the per-shard simulators are seeded with child seeds, so
    the shared layout must come from the master seed's streams.
    """
    n_relays = int(round(params.n_devices * params.relay_fraction))
    if params.relay_selection == "roundrobin" or n_relays == 0:
        return set(range(n_relays))
    from repro.core.operator import (
        Participant,
        greedy_relay_selection,
        random_relay_selection,
    )

    pair_range = MatchConfig().max_pair_distance_m
    participants = [
        Participant(str(i), mobility.position(0.0))
        for i, mobility in enumerate(mobilities)
    ]
    if params.relay_selection == "greedy":
        chosen = greedy_relay_selection(
            participants, range_m=pair_range, max_relays=n_relays
        )
    else:  # random
        chosen = random_relay_selection(
            participants, n_relays, make_rng(params.seed, "relay-selection")
        )
    return {int(device_id) for device_id in chosen}


#: (device_id, x, y, role) — one routed ghost entry.
GhostEntry = Tuple[str, float, float, str]
#: (device_id, x, y, role, target_shards) — one border-report entry.
ReportEntry = Tuple[str, float, float, str, List[int]]


class _ShardState:
    """One shard's complete world: simulator, cells, devices, framework.

    Every shard rebuilds the *full* crowd layout from the master seed's
    named streams (placement, roles, heartbeat phases are global facts),
    then instantiates only the devices homed in its own cells.
    """

    def __init__(self, shard_index: int, params: CrowdShardParams) -> None:
        self.shard_index = shard_index
        self.params = params
        self.plan = params.plan()
        self.sim = Simulator(seed=child_seed(params.seed, f"shard:{shard_index}"))
        self.network = CellularNetwork(self.sim, self.plan.cell_positions)
        self.server = IMServer(self.sim)
        self.network.attach_sink_everywhere(self.server.uplink_sink)
        self.medium = D2DMedium(self.sim, WIFI_DIRECT, profile=DEFAULT_PROFILE)

        arena = Arena(params.arena_w, params.arena_h)
        placement_rng = make_rng(params.seed, "crowd-placement")
        mobilities = place_crowd(
            params.n_devices,
            arena,
            placement_rng,
            hotspots=params.hotspots,
            spread_m=params.hotspot_spread_m,
            mobile_fraction=params.mobile_fraction,
        )
        relay_indices = _relay_indices(params, mobilities)
        phase_rng = make_rng(params.seed, "crowd-phases")
        app = STANDARD_APP
        if params.heartbeat_period_s is not None:
            app = dataclasses.replace(
                app, heartbeat_period_s=params.heartbeat_period_s
            )
        self.app = app
        self.framework = HeartbeatRelayFramework(
            [],
            app=app,
            config=FrameworkConfig(
                scheduler=SchedulerConfig(capacity=params.capacity),
                matching=MatchConfig(),
            ),
        )
        self.devices: Dict[str, Smartphone] = {}
        self.relay_ids: List[str] = []
        for i, mobility in enumerate(mobilities):
            # the phase stream is global: consume a draw for EVERY device
            # so shard membership never shifts another device's phase
            phase = phase_rng.random()
            pos0 = mobility.position(0.0)
            if self.plan.shard_of_position(pos0) != shard_index:
                continue
            is_relay = i in relay_indices
            device_id = f"{'relay' if is_relay else 'dev'}-{i}"
            cell = self.network.attach(device_id, pos0)
            device = Smartphone(
                self.sim,
                device_id,
                mobility=mobility,
                role=Role.RELAY if is_relay else Role.UE,
                ledger=cell.ledger,
                basestation=cell.basestation,
                d2d_medium=self.medium,
                profile=DEFAULT_PROFILE,
                rrc_profile=WCDMA_PROFILE,
            )
            self.devices[device_id] = device
            if is_relay:
                self.relay_ids.append(device_id)
            self.framework.add_device(
                device, phase_fraction=0.0 if is_relay else phase
            )

        self.handovers = 0
        self.ghost_registrations = 0
        self._ghosts: Dict[str, GhostEntry] = {}
        if params.storm_scan_period_s is not None:
            self._setup_storm(params.storm_scan_period_s)

    # ------------------------------------------------------------------
    def _setup_storm(self, scan_period_s: float) -> None:
        """Every own device advertises and scans periodically."""
        medium, sim = self.medium, self.sim
        for device_id in self.devices:
            endpoint = medium.endpoint(device_id)
            endpoint.advertising = True
            endpoint.advertisement.setdefault("storm", 1)

            def tick(did: str = device_id) -> None:
                if medium.endpoint(did).powered_on:
                    medium.discover(did, lambda peers: None)

            sim.every(scan_period_s, tick, name=f"storm-{device_id}")

    # ------------------------------------------------------------------
    # window protocol
    # ------------------------------------------------------------------
    def run_window(
        self, t_end: float, ghosts: List[GhostEntry]
    ) -> List[ReportEntry]:
        self.apply_ghosts(ghosts)
        self.sim.run_until(t_end)
        self.handover_pass()
        return self.border_report()

    def apply_ghosts(self, ghosts: List[GhostEntry]) -> None:
        """Diff the incoming ghost set against the registered one.

        Unchanged ghosts stay registered (no index churn); moved or
        departed ghosts are unregistered, new snapshots registered. The
        diff keys on the full entry, so a moved device re-registers at
        its new frozen position.
        """
        incoming = {entry[0]: entry for entry in ghosts}
        for ghost_id in list(self._ghosts):
            if incoming.get(ghost_id) == self._ghosts[ghost_id]:
                continue
            self.medium.unregister(ghost_id)
            del self._ghosts[ghost_id]
        for ghost_id in sorted(incoming):
            if ghost_id in self._ghosts:
                continue
            entry = incoming[ghost_id]
            endpoint = D2DEndpoint(
                ghost_id,
                GhostMobility((entry[1], entry[2])),
                energy=EnergyModel(owner=ghost_id),
                # capacity_remaining 0 → the relay matcher always rejects
                # a ghost, so no cross-shard session can form mid-window
                advertisement={
                    "ghost": 1,
                    "role": entry[3],
                    "capacity_remaining": 0,
                },
            )
            endpoint.advertising = True
            self.medium.register(endpoint)
            self._ghosts[ghost_id] = entry
            self.ghost_registrations += 1

    def handover_pass(self) -> None:
        """Nearest-cell reattachment for every own device."""
        t = self.sim.now
        for device in self.devices.values():
            cell, changed = self.network.reattach(
                device.device_id, device.mobility.position(t)
            )
            if changed:
                # rebind the modem to the new cell; RRC state (and its
                # pending timers) carry over, as in a lossless handover
                device.modem.basestation = cell.basestation
                device.modem.rrc.ledger = cell.ledger
                self.handovers += 1

    def border_report(self) -> List[ReportEntry]:
        """Own advertising devices a foreign shard should ghost."""
        t = self.sim.now
        margin = self.params.ghost_margin_m
        report: List[ReportEntry] = []
        for device_id, device in self.devices.items():
            endpoint = self.medium.endpoint(device_id)
            if not endpoint.advertising or not endpoint.powered_on:
                continue
            x, y = device.mobility.position(t)
            targets = self.plan.border_shards((x, y), self.shard_index, margin)
            if targets:
                report.append((device_id, x, y, device.role.value, targets))
        return report

    # ------------------------------------------------------------------
    def finish(self) -> Tuple[RunMetrics, Dict[str, int]]:
        """Shutdown, drain, and snapshot this shard's metrics."""
        self.framework.shutdown()
        horizon = self.params.duration_s + self.params.drain_s
        self.sim.run_until(horizon)
        metrics = collect_metrics(
            self.devices.values(),
            self.network.combined_ledger,
            self.server,
            horizon_s=horizon,
            perf=self.medium.perf.to_dict(),
        )
        stats = {
            "handovers": self.handovers,
            "ghost_registrations": self.ghost_registrations,
            "events_fired": self.sim.events_fired,
            "n_devices": len(self.devices),
        }
        return metrics, stats


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class _SerialBackend:
    """All shards in this process — the reference for backend identity."""

    def __init__(self, params: CrowdShardParams) -> None:
        self.shards = [
            _ShardState(i, params) for i in range(params.n_shards)
        ]

    def run_window(
        self, t_end: float, ghosts_by_shard: List[List[GhostEntry]]
    ) -> List[List[ReportEntry]]:
        return [
            shard.run_window(t_end, ghosts_by_shard[i])
            for i, shard in enumerate(self.shards)
        ]

    def finish(self) -> List[Tuple[RunMetrics, Dict[str, int]]]:
        return [shard.finish() for shard in self.shards]

    def close(self) -> None:
        pass


def _shard_worker(conn, params: CrowdShardParams, shard_index: int) -> None:
    """Worker-process loop: build the shard world, serve window commands."""
    state = _ShardState(shard_index, params)
    try:
        while True:
            message = conn.recv()
            if message[0] == "window":
                conn.send(state.run_window(message[1], message[2]))
            elif message[0] == "finish":
                conn.send(state.finish())
                return
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown shard command {message[0]!r}")
    finally:
        conn.close()


class _ProcessBackend:
    """One OS process per shard, command/response over pipes.

    The window protocol is executed in exactly the order the serial
    backend uses (send to all, then receive in shard order), so the two
    backends are observationally identical — that identity is what the
    determinism guard pins.
    """

    def __init__(self, params: CrowdShardParams) -> None:
        self.pipes = []
        self.processes = []
        for i in range(params.n_shards):
            parent_conn, child_conn = multiprocessing.Pipe()
            process = multiprocessing.Process(
                target=_shard_worker,
                args=(child_conn, params, i),
                daemon=True,
                name=f"shard-{i}",
            )
            process.start()
            child_conn.close()
            self.pipes.append(parent_conn)
            self.processes.append(process)

    def run_window(
        self, t_end: float, ghosts_by_shard: List[List[GhostEntry]]
    ) -> List[List[ReportEntry]]:
        for i, pipe in enumerate(self.pipes):
            pipe.send(("window", t_end, ghosts_by_shard[i]))
        return [pipe.recv() for pipe in self.pipes]

    def finish(self) -> List[Tuple[RunMetrics, Dict[str, int]]]:
        for pipe in self.pipes:
            pipe.send(("finish",))
        results = [pipe.recv() for pipe in self.pipes]
        for process in self.processes:
            process.join(timeout=60)
        return results

    def close(self) -> None:
        for pipe in self.pipes:
            try:
                pipe.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass
        for process in self.processes:
            if process.is_alive():  # pragma: no cover - error teardown
                process.terminate()
                process.join(timeout=10)


def _route_reports(
    reports: List[List[ReportEntry]], n_shards: int
) -> List[List[GhostEntry]]:
    """Border reports → per-shard ghost lists, sorted by device id."""
    ghosts_by_shard: List[List[GhostEntry]] = [[] for _ in range(n_shards)]
    for report in reports:
        for device_id, x, y, role, targets in report:
            for target in targets:
                ghosts_by_shard[target].append((device_id, x, y, role))
    for ghosts in ghosts_by_shard:
        ghosts.sort()
    return ghosts_by_shard


# ----------------------------------------------------------------------
# metrics merge
# ----------------------------------------------------------------------
def _merge_perf(
    perfs: List[Optional[Dict[str, float]]]
) -> Optional[Dict[str, float]]:
    """Numeric sum of per-shard perf counters.

    Ratio-style entries (``mean_*``) are summed like everything else, so
    merged values are only meaningful for the count-style counters —
    acceptable because ``perf`` is observability-only and excluded from
    comparable metrics.
    """
    merged: Dict[str, float] = {}
    for perf in perfs:
        if not perf:
            continue
        for key, value in perf.items():
            if isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
    return merged or None


def _merge_metrics(
    per_shard: List[RunMetrics], horizon_s: float
) -> RunMetrics:
    """Union of per-shard device metrics plus summed aggregates.

    Shards partition the device set, so the per-device dicts are
    disjoint; delivery counts add, and the mean delay is the
    received-weighted mean of the shard means.
    """
    devices: Dict[str, Any] = {}
    for metrics in per_shard:
        devices.update(metrics.devices)
    received = on_time = late = relayed = 0
    delay_weighted = 0.0
    have_delivery = False
    for metrics in per_shard:
        delivery = metrics.delivery
        if delivery is None:
            continue
        have_delivery = True
        received += delivery.received
        on_time += delivery.on_time
        late += delivery.late
        relayed += delivery.relayed
        delay_weighted += delivery.mean_delay_s * delivery.received
    merged_delivery = None
    if have_delivery:
        merged_delivery = DeliveryMetrics(
            received=received,
            on_time=on_time,
            late=late,
            relayed=relayed,
            mean_delay_s=delay_weighted / received if received else 0.0,
        )
    return RunMetrics(
        horizon_s=horizon_s,
        devices=devices,
        delivery=merged_delivery,
        total_l3_messages=sum(m.total_l3_messages for m in per_shard),
        faults=None,
        perf=_merge_perf([m.perf for m in per_shard]),
        channel=None,
    )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ShardedRunResult:
    """Merged outcome of one sharded crowd run."""

    metrics: RunMetrics
    params: CrowdShardParams
    backend: str
    windows: int
    handovers: int
    ghost_registrations: int
    events_fired: int
    devices_per_shard: List[int]


def run_crowd_scenario_sharded(
    n_devices: int = 40,
    relay_fraction: float = 0.2,
    duration_s: float = 1800.0,
    arena: Optional[Arena] = None,
    hotspots: int = 3,
    hotspot_spread_m: float = 8.0,
    mobile_fraction: float = 0.0,
    capacity: int = 10,
    seed: int = 0,
    relay_selection: str = "roundrobin",
    drain_s: float = _DEFAULT_DRAIN_S,
    heartbeat_period_s: Optional[float] = None,
    storm_scan_period_s: Optional[float] = None,
    shards: int = 2,
    cells_x: Optional[int] = None,
    cells_y: int = 2,
    sync_window_s: float = 5.0,
    ghost_margin_m: float = WIFI_DIRECT.max_range_m,
    backend: str = "serial",
    mode: str = "d2d",
    channel: Optional[str] = None,
    chaos=None,
    audit: Optional[bool] = None,
) -> ShardedRunResult:
    """Run a crowd scenario on the cell-sharded kernel.

    ``backend="serial"`` runs every shard in this process (the reference
    implementation); ``backend="process"`` runs one worker process per
    shard. Both execute the identical window protocol and must produce
    byte-identical merged metrics.

    The ``mode``/``channel``/``chaos``/``audit`` parameters exist only to
    make unsupported combinations loud: the sharded kernel currently runs
    the d2d framework on the fixed-cost channel without fault injection.
    Single-cell features that need global state (the SINR channel's
    shared resource blocks, chaos scheduling, the cross-device auditor)
    raise rather than silently computing something subtly different.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if backend not in ("serial", "process"):
        raise ValueError(f"backend must be 'serial' or 'process', got {backend!r}")
    if mode != "d2d":
        raise ValueError(
            f"sharded kernel supports mode='d2d' only, got {mode!r}"
        )
    if channel not in (None, "fixed"):
        raise ValueError(
            "sharded kernel does not support the SINR channel "
            f"(shared resource blocks are global state), got {channel!r}"
        )
    if chaos is not None:
        raise ValueError("sharded kernel does not support chaos profiles")
    if audit:
        raise ValueError("sharded kernel does not support the invariant auditor")
    if sync_window_s <= 0:
        raise ValueError(f"sync_window_s must be positive, got {sync_window_s}")
    arena = arena or Arena(60.0, 60.0)
    if cells_x is None:
        cells_x = max(2, 2 * shards)
    params = CrowdShardParams(
        n_devices=n_devices,
        relay_fraction=relay_fraction,
        duration_s=duration_s,
        arena_w=arena.width,
        arena_h=arena.height,
        hotspots=hotspots,
        hotspot_spread_m=hotspot_spread_m,
        mobile_fraction=mobile_fraction,
        seed=seed,
        capacity=capacity,
        relay_selection=relay_selection,
        drain_s=drain_s,
        heartbeat_period_s=heartbeat_period_s,
        storm_scan_period_s=storm_scan_period_s,
        n_shards=shards,
        cells_x=cells_x,
        cells_y=cells_y,
        sync_window_s=sync_window_s,
        ghost_margin_m=ghost_margin_m,
    )
    params.plan()  # validate the partition before any worker starts

    runner = (
        _SerialBackend(params) if backend == "serial"
        else _ProcessBackend(params)
    )
    try:
        stop_at = max(0.0, duration_s - 1.0)
        ghosts_by_shard: List[List[GhostEntry]] = [[] for _ in range(shards)]
        windows = 0
        t = 0.0
        while t < stop_at:
            t = min(t + sync_window_s, stop_at)
            reports = runner.run_window(t, ghosts_by_shard)
            ghosts_by_shard = _route_reports(reports, shards)
            windows += 1
        results = runner.finish()
    finally:
        runner.close()

    metrics = _merge_metrics(
        [metrics for metrics, _stats in results], duration_s + drain_s
    )
    stats = [shard_stats for _metrics, shard_stats in results]
    return ShardedRunResult(
        metrics=metrics,
        params=params,
        backend=backend,
        windows=windows,
        handovers=sum(s["handovers"] for s in stats),
        ghost_registrations=sum(s["ghost_registrations"] for s in stats),
        events_fired=sum(s["events_fired"] for s in stats),
        devices_per_shard=[s["n_devices"] for s in stats],
    )
