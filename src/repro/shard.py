"""Cell-sharded event kernel: city-scale crowds across worker processes.

The single :class:`~repro.sim.engine.Simulator` kernel is exact but
serial: a 5000-device storm fires every scan, beat, and RRC timer through
one heap. This module partitions that work by **serving cell** — the same
partition :mod:`repro.cellular.network` defines — so each shard owns the
devices homed in its cells and runs them on a private simulator, either
in-process (``backend="serial"``) or on one worker process per shard
(``backend="process"``).

Conservative-time sync
----------------------
Shards advance in lock-step windows of ``sync_window_s`` simulated
seconds. Device state never crosses a shard boundary mid-window; at each
window boundary every shard

1. applies the **ghost endpoints** routed to it at the previous boundary
   (frozen-position snapshots of foreign advertising devices near the
   border),
2. runs its simulator to the boundary,
3. runs a handover pass (nearest-cell reattachment, rebinding each
   moved device's modem to the new cell's base station and ledger), and
4. reports its own advertising devices that sit within the ghost margin
   of a foreign shard's cells.

The parent gathers all reports (a barrier), routes them by the shard
plan, and hands each shard its ghost list for the next window. Ghosts are
discovery-visible only: they advertise ``capacity_remaining: 0`` so the
relay matcher always rejects them, and their mobility reports an unknown
max speed so the spatial index treats them as unindexable exact-check
endpoints (the same churn path real unindexable devices take).

Determinism contract
--------------------
A sharded run is **not** byte-identical to the unsharded
:func:`~repro.scenarios.run_crowd_scenario` — each shard draws from its
own ``child_seed(seed, "shard:i")`` RNG streams, and border discovery
sees frozen ghosts instead of live peers. What is pinned, and what the
determinism guard asserts, is

- ``serial`` ≡ ``process``: the two backends execute the identical
  window protocol in the identical order, so their merged
  :meth:`~repro.metrics.RunMetrics.to_comparable_dict` match byte for
  byte, and
- replay: the same ``(params, seed)`` always reproduces the same merged
  metrics, whichever backend ran it.

Every shard rebuilds the full crowd layout (placement, roles, phases)
from the master seed's named streams, then instantiates only its own
devices — no layout data ever needs to cross a process boundary.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cellular.network import CellularNetwork, grid_cell_positions
from repro.cellular.rrc import WCDMA_PROFILE
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.core.matching import MatchConfig
from repro.core.scheduler import SchedulerConfig
from repro.d2d.base import D2DEndpoint, D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.energy.model import EnergyModel
from repro.energy.profiles import DEFAULT_PROFILE
from repro.metrics import DeliveryMetrics, RunMetrics, collect_metrics
from repro.mobility.models import MobilityModel, place_crowd
from repro.mobility.space import Arena, Position, distance_between
from repro.sim.engine import Simulator
from repro.sim.rng import child_seed, make_rng
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

#: Matches :data:`repro.scenarios.DEFAULT_DRAIN_S` (not imported to keep
#: this module import-light for spawned workers).
_DEFAULT_DRAIN_S = 30.0


# ----------------------------------------------------------------------
# partition plan
# ----------------------------------------------------------------------
try:  # numpy accelerates the one-shot cell-occupancy count; the scalar
    # fallback below runs the bit-identical math (same IEEE float64 ops
    # in the same order), so plan geometry never depends on its presence.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None


def cell_occupancy(
    cell_positions: Sequence[Position], positions: Sequence[Position]
) -> List[int]:
    """Devices per grid cell (nearest-cell assignment, first cell wins ties).

    The tile planner's cost model: one count per cell, computed once from
    the t=0 placements. Ties break to the lowest cell index on both the
    numpy and the scalar path (``argmin``/``min`` both keep the first
    minimum), and both paths compare the same squared distances, so the
    resulting weights — and therefore the partition — are identical
    whether or not numpy is installed.
    """
    counts = [0] * len(cell_positions)
    if not positions:
        return counts
    if _np is not None:
        cells = _np.asarray(cell_positions, dtype=_np.float64)
        points = _np.asarray(positions, dtype=_np.float64)
        dx = points[:, 0:1] - cells[None, :, 0]
        dy = points[:, 1:2] - cells[None, :, 1]
        nearest = _np.argmin(dx * dx + dy * dy, axis=1)
        for cell in nearest.tolist():
            counts[cell] += 1
        return counts
    for x, y in positions:
        best_cell = 0
        best_d2 = float("inf")
        for c, (cx, cy) in enumerate(cell_positions):
            dx = x - cx
            dy = y - cy
            d2 = dx * dx + dy * dy
            if d2 < best_d2:
                best_d2 = d2
                best_cell = c
        counts[best_cell] += 1
    return counts


def _tile_partition(
    n_shards: int, cells_x: int, cells_y: int, weights: Sequence[float]
) -> List[int]:
    """Pack grid cells into rectangular shard tiles by weighted bisection.

    Orthogonal recursive bisection over the cell grid: each step cuts the
    current rectangle along a full grid line (so every shard stays a
    rectangle and the ghost-border exchange stays a per-edge operation)
    and splits the rectangle's shard budget between the two sides in
    proportion to the device weight each side carries. The cut minimizing
    the per-shard load imbalance ``|w_lo/k_lo - w_hi/k_hi|`` wins;
    ties break deterministically (x-cut before y-cut, lowest cut line
    first), so every shard worker derives the identical partition.

    Unlike the column-band plan this never requires ``cells_x >= n_shards``
    — any grid with at least one cell per shard is packable.
    """
    assignment = [0] * (cells_x * cells_y)

    def rect_cells(x0: int, x1: int, y0: int, y1: int) -> List[int]:
        return [
            y * cells_x + x for y in range(y0, y1) for x in range(x0, x1)
        ]

    def line_weight(axis: str, line: int, x0: int, x1: int, y0: int, y1: int) -> float:
        if axis == "x":  # one column of the rect
            return sum(weights[y * cells_x + line] for y in range(y0, y1))
        return sum(weights[line * cells_x + x] for x in range(x0, x1))

    def split(x0: int, x1: int, y0: int, y1: int, shard0: int, k: int) -> None:
        if k == 1:
            for c in rect_cells(x0, x1, y0, y1):
                assignment[c] = shard0
            return
        n_cells = (x1 - x0) * (y1 - y0)
        total = float(sum(weights[c] for c in rect_cells(x0, x1, y0, y1)))
        best: Optional[Tuple[float, int, int, int]] = None
        for axis_idx, (axis, lo, hi, other) in enumerate(
            (("x", x0, x1, y1 - y0), ("y", y0, y1, x1 - x0))
        ):
            w_lo = 0.0
            for cut in range(1, hi - lo):
                w_lo += line_weight(axis, lo + cut - 1, x0, x1, y0, y1)
                n_lo = cut * other
                n_hi = n_cells - n_lo
                # the shard budget follows the weight, clamped so each
                # side keeps at least one cell per shard it receives
                k_min = max(1, k - n_hi)
                k_max = min(k - 1, n_lo)
                if k_min > k_max:
                    continue  # no feasible budget split across this cut
                share = w_lo / total if total else n_lo / n_cells
                k_lo = min(k_max, max(k_min, round(k * share)))
                k_hi = k - k_lo
                w_hi = total - w_lo
                score = abs(w_lo / k_lo - w_hi / k_hi)
                candidate = (score, axis_idx, cut, k_lo)
                if best is None or candidate < best:
                    best = candidate
        # a feasible cut always exists while n_cells >= k >= 2: cutting
        # one line off any axis of length >= 2 leaves k_min <= k_max
        assert best is not None, "no feasible tile cut (grid smaller than shards?)"
        _score, axis_idx, cut, k_lo = best
        if axis_idx == 0:
            split(x0, x0 + cut, y0, y1, shard0, k_lo)
            split(x0 + cut, x1, y0, y1, shard0 + k_lo, k - k_lo)
        else:
            split(x0, x1, y0, y0 + cut, shard0, k_lo)
            split(x0, x1, y0 + cut, y1, shard0 + k_lo, k - k_lo)

    split(0, cells_x, 0, cells_y, 0, n_shards)
    return assignment


class ShardPlan:
    """The static cell-to-shard partition every participant agrees on.

    Cells form a ``cells_x × cells_y`` grid over the arena (see
    :func:`repro.cellular.network.grid_cell_positions`). Two partition
    shapes exist:

    - ``plan="bands"`` (default): shard ownership by **column band** —
      shard boundaries are vertical lines and a device's home shard
      depends only on its x position at t=0. The legacy partition; kept
      byte-identical so existing pinned runs replay exactly.
    - ``plan="tiles"``: rectangular **tiles** packed by the weighted
      bisection in :func:`_tile_partition`, balancing per-shard device
      load from the ``cell_weights`` cost model (device counts from the
      initial placements). Lifts the ``n_shards <= cells_x`` band limit —
      any grid with one cell per shard works.
    """

    def __init__(
        self,
        n_shards: int,
        cells_x: int,
        cells_y: int,
        arena_w: float,
        arena_h: float,
        plan: str = "bands",
        cell_weights: Optional[Sequence[float]] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if plan not in ("bands", "tiles"):
            raise ValueError(
                f"shard plan must be 'bands' or 'tiles', got {plan!r}"
            )
        n_cells = cells_x * cells_y
        if plan == "bands" and cells_x < n_shards:
            raise ValueError(
                f"column bands need at least one cell column per shard: "
                f"cells_x={cells_x} < n_shards={n_shards} "
                f"(use --shard-plan tiles to pack shards into 2-D tiles "
                f"instead of column bands)"
            )
        if plan == "tiles" and n_cells < n_shards:
            raise ValueError(
                f"need at least one grid cell per shard: "
                f"{cells_x}x{cells_y}={n_cells} cells < n_shards={n_shards}"
            )
        if cell_weights is not None and len(cell_weights) != n_cells:
            raise ValueError(
                f"cell_weights must have one entry per cell: "
                f"got {len(cell_weights)} for a {cells_x}x{cells_y} grid"
            )
        self.n_shards = n_shards
        self.cells_x = cells_x
        self.cells_y = cells_y
        self.plan_kind = plan
        self.cell_positions: List[Position] = grid_cell_positions(
            arena_w, arena_h, cells_x, cells_y
        )
        #: cell index -> owning shard
        if plan == "bands":
            self.cell_shards: List[int] = [
                (c % cells_x) * n_shards // cells_x
                for c in range(len(self.cell_positions))
            ]
        else:
            weights = (
                list(cell_weights) if cell_weights is not None
                else [1.0] * n_cells
            )
            self.cell_shards = _tile_partition(
                n_shards, cells_x, cells_y, weights
            )
        self._shard_cells: List[List[Position]] = [[] for _ in range(n_shards)]
        for position, shard in zip(self.cell_positions, self.cell_shards):
            self._shard_cells[shard].append(position)

    def nearest_cell(self, position: Position) -> int:
        positions = self.cell_positions
        return min(
            range(len(positions)),
            key=lambda c: distance_between(positions[c], position),
        )

    def shard_of_position(self, position: Position) -> int:
        """Home shard of a device standing at ``position``."""
        return self.cell_shards[self.nearest_cell(position)]

    def border_shards(
        self, position: Position, own_shard: int, margin_m: float
    ) -> List[int]:
        """Foreign shards that should see a ghost of this device.

        A device borders shard ``j`` when its distance to ``j``'s nearest
        cell exceeds its distance to the overall nearest cell by at most
        ``2 × margin_m`` — twice the D2D range, so any foreign device it
        could possibly reach lives in a shard that received its ghost.
        """
        d_best = min(
            distance_between(cell, position) for cell in self.cell_positions
        )
        out: List[int] = []
        for j in range(self.n_shards):
            if j == own_shard:
                continue
            d_j = min(
                distance_between(cell, position) for cell in self._shard_cells[j]
            )
            if d_j - d_best <= 2.0 * margin_m:
                out.append(j)
        return out


@dataclasses.dataclass(frozen=True)
class CrowdShardParams:
    """Plain-scalar description of one sharded crowd run.

    Frozen and picklable on purpose: this is the *only* object shipped to
    worker processes — each worker rebuilds its entire world from it.
    ``storm_scan_period_s`` replaces the unsharded runner's ``pre_run``
    callable (unpicklable) with the one storm knob the benches use.
    """

    n_devices: int = 40
    relay_fraction: float = 0.2
    duration_s: float = 1800.0
    arena_w: float = 60.0
    arena_h: float = 60.0
    hotspots: int = 3
    hotspot_spread_m: float = 8.0
    mobile_fraction: float = 0.0
    seed: int = 0
    capacity: int = 10
    relay_selection: str = "roundrobin"
    drain_s: float = _DEFAULT_DRAIN_S
    heartbeat_period_s: Optional[float] = None
    storm_scan_period_s: Optional[float] = None
    n_shards: int = 2
    cells_x: int = 4
    cells_y: int = 2
    sync_window_s: float = 5.0
    ghost_margin_m: float = WIFI_DIRECT.max_range_m
    shard_plan: str = "bands"

    def plan(self) -> ShardPlan:
        """Build the partition every shard worker independently agrees on.

        The tile plan's cost model needs the t=0 device placements; they
        are re-derived here from the master seed's ``crowd-placement``
        stream (the same draw order :class:`_ShardState` replays), so
        every worker computes identical weights — no plan data crosses a
        process boundary.
        """
        weights = None
        if self.shard_plan == "tiles":
            mobilities = place_crowd(
                self.n_devices,
                Arena(self.arena_w, self.arena_h),
                make_rng(self.seed, "crowd-placement"),
                hotspots=self.hotspots,
                spread_m=self.hotspot_spread_m,
                mobile_fraction=self.mobile_fraction,
            )
            weights = cell_occupancy(
                grid_cell_positions(
                    self.arena_w, self.arena_h, self.cells_x, self.cells_y
                ),
                [m.position(0.0) for m in mobilities],
            )
        return ShardPlan(
            self.n_shards, self.cells_x, self.cells_y,
            self.arena_w, self.arena_h,
            plan=self.shard_plan, cell_weights=weights,
        )


class GhostMobility(MobilityModel):
    """Frozen-position snapshot of a foreign-shard device.

    Reports ``max_speed_m_s() -> 0.0``: the *real* device does move
    between sync windows, but a ghost's position is a constant for as
    long as it is registered — :meth:`_ShardState.apply_ghosts`
    unregisters a moved device's ghost and registers a fresh snapshot at
    the new position, so the spatial index never sees a stale cell. That
    makes ghosts fully indexable static endpoints; treating them as
    unindexable (the pre-tile behavior) put every ghost into every scan's
    exact-check set, which punished exactly the partitions whose borders
    cross dense cells — the ghost-heavy ones a load-balanced plan picks.
    """

    def __init__(self, position: Position) -> None:
        self._position = (float(position[0]), float(position[1]))

    def position(self, t: float) -> Position:
        return self._position

    def velocity(self, t: float) -> Tuple[float, float]:
        return (0.0, 0.0)

    def max_speed_m_s(self) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GhostMobility({self._position})"


# ----------------------------------------------------------------------
# per-shard world
# ----------------------------------------------------------------------
def _relay_indices(
    params: CrowdShardParams, mobilities: Sequence[MobilityModel]
) -> set:
    """Global relay assignment, identical in every shard.

    Mirrors :func:`repro.scenarios._select_relay_indices`, but draws the
    random strategy's RNG from ``make_rng(seed, "relay-selection")``
    directly — the per-shard simulators are seeded with child seeds, so
    the shared layout must come from the master seed's streams.
    """
    n_relays = int(round(params.n_devices * params.relay_fraction))
    if params.relay_selection == "roundrobin" or n_relays == 0:
        return set(range(n_relays))
    from repro.core.operator import (
        Participant,
        greedy_relay_selection,
        random_relay_selection,
    )

    pair_range = MatchConfig().max_pair_distance_m
    participants = [
        Participant(str(i), mobility.position(0.0))
        for i, mobility in enumerate(mobilities)
    ]
    if params.relay_selection == "greedy":
        chosen = greedy_relay_selection(
            participants, range_m=pair_range, max_relays=n_relays
        )
    else:  # random
        chosen = random_relay_selection(
            participants, n_relays, make_rng(params.seed, "relay-selection")
        )
    return {int(device_id) for device_id in chosen}


#: (device_id, x, y, role) — one routed ghost entry.
GhostEntry = Tuple[str, float, float, str]
#: (device_id, x, y, role, target_shards) — one border-report entry.
ReportEntry = Tuple[str, float, float, str, List[int]]


class _ShardState:
    """One shard's complete world: simulator, cells, devices, framework.

    Every shard rebuilds the *full* crowd layout from the master seed's
    named streams (placement, roles, heartbeat phases are global facts),
    then instantiates only the devices homed in its own cells.
    """

    def __init__(self, shard_index: int, params: CrowdShardParams) -> None:
        self.shard_index = shard_index
        self.params = params
        self.plan = params.plan()
        self.sim = Simulator(seed=child_seed(params.seed, f"shard:{shard_index}"))
        self.network = CellularNetwork(self.sim, self.plan.cell_positions)
        self.server = IMServer(self.sim)
        self.network.attach_sink_everywhere(self.server.uplink_sink)
        self.medium = D2DMedium(self.sim, WIFI_DIRECT, profile=DEFAULT_PROFILE)

        arena = Arena(params.arena_w, params.arena_h)
        placement_rng = make_rng(params.seed, "crowd-placement")
        mobilities = place_crowd(
            params.n_devices,
            arena,
            placement_rng,
            hotspots=params.hotspots,
            spread_m=params.hotspot_spread_m,
            mobile_fraction=params.mobile_fraction,
        )
        relay_indices = _relay_indices(params, mobilities)
        phase_rng = make_rng(params.seed, "crowd-phases")
        app = STANDARD_APP
        if params.heartbeat_period_s is not None:
            app = dataclasses.replace(
                app, heartbeat_period_s=params.heartbeat_period_s
            )
        self.app = app
        self.framework = HeartbeatRelayFramework(
            [],
            app=app,
            config=FrameworkConfig(
                scheduler=SchedulerConfig(capacity=params.capacity),
                matching=MatchConfig(),
            ),
        )
        self.devices: Dict[str, Smartphone] = {}
        self.relay_ids: List[str] = []
        for i, mobility in enumerate(mobilities):
            # the phase stream is global: consume a draw for EVERY device
            # so shard membership never shifts another device's phase
            phase = phase_rng.random()
            pos0 = mobility.position(0.0)
            if self.plan.shard_of_position(pos0) != shard_index:
                continue
            is_relay = i in relay_indices
            device_id = f"{'relay' if is_relay else 'dev'}-{i}"
            cell = self.network.attach(device_id, pos0)
            device = Smartphone(
                self.sim,
                device_id,
                mobility=mobility,
                role=Role.RELAY if is_relay else Role.UE,
                ledger=cell.ledger,
                basestation=cell.basestation,
                d2d_medium=self.medium,
                profile=DEFAULT_PROFILE,
                rrc_profile=WCDMA_PROFILE,
            )
            self.devices[device_id] = device
            if is_relay:
                self.relay_ids.append(device_id)
            self.framework.add_device(
                device, phase_fraction=0.0 if is_relay else phase
            )

        self.handovers = 0
        self.ghost_registrations = 0
        self._ghosts: Dict[str, GhostEntry] = {}
        if params.storm_scan_period_s is not None:
            self._setup_storm(params.storm_scan_period_s)

    # ------------------------------------------------------------------
    def _setup_storm(self, scan_period_s: float) -> None:
        """Every own device advertises and scans periodically."""
        medium, sim = self.medium, self.sim
        for device_id in self.devices:
            endpoint = medium.endpoint(device_id)
            endpoint.advertising = True
            endpoint.advertisement.setdefault("storm", 1)

            def tick(did: str = device_id) -> None:
                if medium.endpoint(did).powered_on:
                    medium.discover(did, lambda peers: None)

            sim.every(scan_period_s, tick, name=f"storm-{device_id}")

    # ------------------------------------------------------------------
    # window protocol
    # ------------------------------------------------------------------
    def run_window(
        self, t_end: float, ghosts: List[GhostEntry]
    ) -> Tuple[List[ReportEntry], float]:
        """One sync window; returns ``(border_report, work_seconds)``.

        ``work_seconds`` is this shard's wall-clock cost for the window —
        the number the parent turns into ``barrier_wait_s`` (how long the
        shard would idle at the barrier waiting for the slowest peer) and
        the critical path. The ghost/handover/report bookkeeping is also
        booked under the ``shard-sync`` perf section so sync overhead is
        separable from simulation work in bench reports.
        """
        t_start = time.perf_counter()
        self.apply_ghosts(ghosts)
        t_sim = time.perf_counter()
        sync_s = t_sim - t_start
        self.sim.run_until(t_end)
        t_post = time.perf_counter()
        self.handover_pass()
        report = self.border_report()
        t_done = time.perf_counter()
        self.medium.perf.add_seconds("shard-sync", sync_s + (t_done - t_post))
        return report, t_done - t_start

    def apply_ghosts(self, ghosts: List[GhostEntry]) -> None:
        """Diff the incoming ghost set against the registered one.

        Unchanged ghosts stay registered (no index churn); moved or
        departed ghosts are unregistered, new snapshots registered. The
        diff keys on the full entry, so a moved device re-registers at
        its new frozen position.
        """
        incoming = {entry[0]: entry for entry in ghosts}
        for ghost_id in list(self._ghosts):
            if incoming.get(ghost_id) == self._ghosts[ghost_id]:
                continue
            self.medium.unregister(ghost_id)
            del self._ghosts[ghost_id]
        for ghost_id in sorted(incoming):
            if ghost_id in self._ghosts:
                continue
            entry = incoming[ghost_id]
            endpoint = D2DEndpoint(
                ghost_id,
                GhostMobility((entry[1], entry[2])),
                energy=EnergyModel(owner=ghost_id),
                # capacity_remaining 0 → the relay matcher always rejects
                # a ghost, so no cross-shard session can form mid-window
                advertisement={
                    "ghost": 1,
                    "role": entry[3],
                    "capacity_remaining": 0,
                },
            )
            endpoint.advertising = True
            self.medium.register(endpoint)
            self._ghosts[ghost_id] = entry
            self.ghost_registrations += 1

    def handover_pass(self) -> None:
        """Nearest-cell reattachment for every own device."""
        t = self.sim.now
        for device in self.devices.values():
            cell, changed = self.network.reattach(
                device.device_id, device.mobility.position(t)
            )
            if changed:
                # rebind the modem to the new cell; RRC state (and its
                # pending timers) carry over, as in a lossless handover
                device.modem.basestation = cell.basestation
                device.modem.rrc.ledger = cell.ledger
                self.handovers += 1

    def border_report(self) -> List[ReportEntry]:
        """Own advertising devices a foreign shard should ghost."""
        t = self.sim.now
        margin = self.params.ghost_margin_m
        report: List[ReportEntry] = []
        for device_id, device in self.devices.items():
            endpoint = self.medium.endpoint(device_id)
            if not endpoint.advertising or not endpoint.powered_on:
                continue
            x, y = device.mobility.position(t)
            targets = self.plan.border_shards((x, y), self.shard_index, margin)
            if targets:
                report.append((device_id, x, y, device.role.value, targets))
        return report

    # ------------------------------------------------------------------
    def finish(self) -> Tuple[RunMetrics, Dict[str, int]]:
        """Shutdown, drain, and snapshot this shard's metrics."""
        self.framework.shutdown()
        horizon = self.params.duration_s + self.params.drain_s
        self.sim.run_until(horizon)
        metrics = collect_metrics(
            self.devices.values(),
            self.network.combined_ledger,
            self.server,
            horizon_s=horizon,
            perf=self.medium.perf,
        )
        stats = {
            "handovers": self.handovers,
            "ghost_registrations": self.ghost_registrations,
            "events_fired": self.sim.events_fired,
            "n_devices": len(self.devices),
            "coalesced_pushes": self.sim.queue.coalesced_pushes,
            "coalesced_pops": self.sim.queue.coalesced_pops,
        }
        return metrics, stats


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class _SerialBackend:
    """All shards in this process — the reference for backend identity."""

    def __init__(self, params: CrowdShardParams) -> None:
        self.shards = [
            _ShardState(i, params) for i in range(params.n_shards)
        ]

    def run_window(
        self, t_end: float, ghosts_by_shard: List[List[GhostEntry]]
    ) -> List[Tuple[List[ReportEntry], float]]:
        return [
            shard.run_window(t_end, ghosts_by_shard[i])
            for i, shard in enumerate(self.shards)
        ]

    def finish(self) -> List[Tuple[RunMetrics, Dict[str, int]]]:
        return [shard.finish() for shard in self.shards]

    def close(self) -> None:
        pass


def _shard_worker(conn, params: CrowdShardParams, shard_index: int) -> None:
    """Worker-process loop: build the shard world, serve window commands."""
    state = _ShardState(shard_index, params)
    try:
        while True:
            message = conn.recv()
            if message[0] == "window":
                conn.send(state.run_window(message[1], message[2]))
            elif message[0] == "finish":
                conn.send(state.finish())
                return
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown shard command {message[0]!r}")
    finally:
        conn.close()


class _ProcessBackend:
    """One OS process per shard, command/response over pipes.

    The window protocol is executed in exactly the order the serial
    backend uses (send to all, then receive in shard order), so the two
    backends are observationally identical — that identity is what the
    determinism guard pins.
    """

    def __init__(self, params: CrowdShardParams) -> None:
        self.pipes = []
        self.processes = []
        for i in range(params.n_shards):
            parent_conn, child_conn = multiprocessing.Pipe()
            process = multiprocessing.Process(
                target=_shard_worker,
                args=(child_conn, params, i),
                daemon=True,
                name=f"shard-{i}",
            )
            process.start()
            child_conn.close()
            self.pipes.append(parent_conn)
            self.processes.append(process)

    def run_window(
        self, t_end: float, ghosts_by_shard: List[List[GhostEntry]]
    ) -> List[Tuple[List[ReportEntry], float]]:
        for i, pipe in enumerate(self.pipes):
            pipe.send(("window", t_end, ghosts_by_shard[i]))
        return [pipe.recv() for pipe in self.pipes]

    def finish(self) -> List[Tuple[RunMetrics, Dict[str, int]]]:
        for pipe in self.pipes:
            pipe.send(("finish",))
        results = [pipe.recv() for pipe in self.pipes]
        for process in self.processes:
            process.join(timeout=60)
        return results

    def close(self) -> None:
        for pipe in self.pipes:
            try:
                pipe.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass
        for process in self.processes:
            if process.is_alive():  # pragma: no cover - error teardown
                process.terminate()
                process.join(timeout=10)


def _route_reports(
    reports: List[List[ReportEntry]], n_shards: int
) -> List[List[GhostEntry]]:
    """Border reports → per-shard ghost lists, sorted by device id."""
    ghosts_by_shard: List[List[GhostEntry]] = [[] for _ in range(n_shards)]
    for report in reports:
        for device_id, x, y, role, targets in report:
            for target in targets:
                ghosts_by_shard[target].append((device_id, x, y, role))
    for ghosts in ghosts_by_shard:
        ghosts.sort()
    return ghosts_by_shard


# ----------------------------------------------------------------------
# metrics merge
# ----------------------------------------------------------------------
def _merge_perf(
    perfs: List[Optional[Dict[str, float]]]
) -> Optional[Dict[str, float]]:
    """Numeric sum of per-shard perf counters.

    Ratio-style entries (``mean_*``) are summed like everything else, so
    merged values are only meaningful for the count-style counters —
    acceptable because ``perf`` is observability-only and excluded from
    comparable metrics.
    """
    merged: Dict[str, float] = {}
    for perf in perfs:
        if not perf:
            continue
        for key, value in perf.items():
            if isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
    return merged or None


def _merge_metrics(
    per_shard: List[RunMetrics], horizon_s: float
) -> RunMetrics:
    """Union of per-shard device metrics plus summed aggregates.

    Shards partition the device set, so the per-device dicts are
    disjoint; delivery counts add, and the mean delay is the
    received-weighted mean of the shard means.
    """
    devices: Dict[str, Any] = {}
    for metrics in per_shard:
        devices.update(metrics.devices)
    received = on_time = late = relayed = 0
    delay_weighted = 0.0
    have_delivery = False
    for metrics in per_shard:
        delivery = metrics.delivery
        if delivery is None:
            continue
        have_delivery = True
        received += delivery.received
        on_time += delivery.on_time
        late += delivery.late
        relayed += delivery.relayed
        delay_weighted += delivery.mean_delay_s * delivery.received
    merged_delivery = None
    if have_delivery:
        merged_delivery = DeliveryMetrics(
            received=received,
            on_time=on_time,
            late=late,
            relayed=relayed,
            mean_delay_s=delay_weighted / received if received else 0.0,
        )
    return RunMetrics(
        horizon_s=horizon_s,
        devices=devices,
        delivery=merged_delivery,
        total_l3_messages=sum(m.total_l3_messages for m in per_shard),
        faults=None,
        perf=_merge_perf([m.perf for m in per_shard]),
        channel=None,
    )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ShardedRunResult:
    """Merged outcome of one sharded crowd run."""

    metrics: RunMetrics
    params: CrowdShardParams
    backend: str
    windows: int
    handovers: int
    ghost_registrations: int
    events_fired: int
    devices_per_shard: List[int]
    #: per-shard load report: ``devices``, ``events``, ``work_s``,
    #: ``barrier_wait_s`` (idle time the shard would spend at window
    #: barriers waiting for the slowest peer), handover/ghost churn and
    #: the event kernel's coalescing counters
    shard_load: List[Dict[str, float]] = dataclasses.field(default_factory=list)
    #: sum over windows of the slowest shard's work — the wall time an
    #: ideal one-core-per-shard machine needs for the windowed portion
    critical_path_s: float = 0.0
    #: sum of every shard's window work (what a single core must do)
    total_work_s: float = 0.0

    @property
    def device_skew(self) -> float:
        """Max/mean shard device count — 1.0 is a perfectly balanced plan."""
        counts = self.devices_per_shard
        if not counts or not sum(counts):
            return 0.0
        return max(counts) / (sum(counts) / len(counts))


def run_crowd_scenario_sharded(
    n_devices: int = 40,
    relay_fraction: float = 0.2,
    duration_s: float = 1800.0,
    arena: Optional[Arena] = None,
    hotspots: int = 3,
    hotspot_spread_m: float = 8.0,
    mobile_fraction: float = 0.0,
    capacity: int = 10,
    seed: int = 0,
    relay_selection: str = "roundrobin",
    drain_s: float = _DEFAULT_DRAIN_S,
    heartbeat_period_s: Optional[float] = None,
    storm_scan_period_s: Optional[float] = None,
    shards: int = 2,
    cells_x: Optional[int] = None,
    cells_y: int = 2,
    sync_window_s: float = 5.0,
    ghost_margin_m: float = WIFI_DIRECT.max_range_m,
    shard_plan: str = "bands",
    backend: str = "serial",
    mode: str = "d2d",
    channel: Optional[str] = None,
    chaos=None,
    audit: Optional[bool] = None,
) -> ShardedRunResult:
    """Run a crowd scenario on the cell-sharded kernel.

    ``backend="serial"`` runs every shard in this process (the reference
    implementation); ``backend="process"`` runs one worker process per
    shard. Both execute the identical window protocol and must produce
    byte-identical merged metrics. ``shard_plan`` picks the partition:
    ``"bands"`` (legacy column bands, byte-identical to prior releases)
    or ``"tiles"`` (load-balanced rectangular tiles, see
    :class:`ShardPlan`).

    The ``mode``/``channel``/``chaos``/``audit`` parameters exist only to
    make unsupported combinations loud: the sharded kernel currently runs
    the d2d framework on the fixed-cost channel without fault injection.
    Single-cell features that need global state (the SINR channel's
    shared resource blocks, chaos scheduling, the cross-device auditor)
    raise rather than silently computing something subtly different —
    and the error lists *every* offending option at once, so a sweep
    config with several bad knobs needs one round trip to fix, not four.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if backend not in ("serial", "process"):
        raise ValueError(f"backend must be 'serial' or 'process', got {backend!r}")
    blockers: List[str] = []
    if mode != "d2d":
        blockers.append(
            f"mode={mode!r} (only the d2d framework is sharded; the "
            f"original system needs the single global ledger)"
        )
    if channel not in (None, "fixed"):
        blockers.append(
            f"channel={channel!r} (the SINR channel's shared resource "
            f"blocks are global state)"
        )
    if chaos is not None:
        blockers.append(
            f"chaos={chaos!r} (fault scheduling draws from one global "
            f"chaos timeline)"
        )
    if audit:
        blockers.append(
            "audit=True (the invariant auditor tracks cross-device "
            "global state)"
        )
    if blockers:
        raise ValueError(
            "sharded kernel does not support: " + "; ".join(blockers)
        )
    if sync_window_s <= 0:
        raise ValueError(f"sync_window_s must be positive, got {sync_window_s}")
    arena = arena or Arena(60.0, 60.0)
    if cells_x is None:
        cells_x = max(2, 2 * shards)
    params = CrowdShardParams(
        n_devices=n_devices,
        relay_fraction=relay_fraction,
        duration_s=duration_s,
        arena_w=arena.width,
        arena_h=arena.height,
        hotspots=hotspots,
        hotspot_spread_m=hotspot_spread_m,
        mobile_fraction=mobile_fraction,
        seed=seed,
        capacity=capacity,
        relay_selection=relay_selection,
        drain_s=drain_s,
        heartbeat_period_s=heartbeat_period_s,
        storm_scan_period_s=storm_scan_period_s,
        n_shards=shards,
        cells_x=cells_x,
        cells_y=cells_y,
        sync_window_s=sync_window_s,
        ghost_margin_m=ghost_margin_m,
        shard_plan=shard_plan,
    )
    params.plan()  # validate the partition before any worker starts

    runner = (
        _SerialBackend(params) if backend == "serial"
        else _ProcessBackend(params)
    )
    work_s = [0.0] * shards
    barrier_wait_s = [0.0] * shards
    critical_path_s = 0.0
    try:
        stop_at = max(0.0, duration_s - 1.0)
        ghosts_by_shard: List[List[GhostEntry]] = [[] for _ in range(shards)]
        windows = 0
        t = 0.0
        while t < stop_at:
            t = min(t + sync_window_s, stop_at)
            outcomes = runner.run_window(t, ghosts_by_shard)
            reports = [report for report, _work in outcomes]
            window_work = [work for _report, work in outcomes]
            # the slowest shard sets the window barrier: everyone else's
            # gap to it is idle time on a one-core-per-shard machine
            peak = max(window_work)
            critical_path_s += peak
            for i, shard_work in enumerate(window_work):
                work_s[i] += shard_work
                barrier_wait_s[i] += peak - shard_work
            ghosts_by_shard = _route_reports(reports, shards)
            windows += 1
        results = runner.finish()
    finally:
        runner.close()

    metrics = _merge_metrics(
        [metrics for metrics, _stats in results], duration_s + drain_s
    )
    stats = [shard_stats for _metrics, shard_stats in results]
    shard_load = [
        {
            "shard": i,
            "devices": s["n_devices"],
            "events": s["events_fired"],
            "work_s": work_s[i],
            "barrier_wait_s": barrier_wait_s[i],
            "handovers": s["handovers"],
            "ghost_registrations": s["ghost_registrations"],
            "coalesced_pushes": s.get("coalesced_pushes", 0),
            "coalesced_pops": s.get("coalesced_pops", 0),
        }
        for i, s in enumerate(stats)
    ]
    return ShardedRunResult(
        metrics=metrics,
        params=params,
        backend=backend,
        windows=windows,
        handovers=sum(s["handovers"] for s in stats),
        ghost_registrations=sum(s["ghost_registrations"] for s in stats),
        events_fired=sum(s["events_fired"] for s in stats),
        devices_per_shard=[s["n_devices"] for s in stats],
        shard_load=shard_load,
        critical_path_s=critical_path_s,
        total_work_s=sum(work_s),
    )
