"""Legacy setup shim: lets `pip install -e .` work on old setuptools
(no PEP 660 editable-wheel support). All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
