"""Fig. 10 — relay energy with 1/3/5/7 connected UEs vs. connection time.

Paper findings: more connected UEs cost the relay noticeably more when few
beats have been forwarded, but "when the connection time lasts long
enough, the impact of the multiple connected UEs can be neglected for its
little proportion".
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.analysis import monotone_nondecreasing
from repro.experiments import fig10
from repro.reporting import format_series

UE_COUNTS = (1, 3, 5, 7)
TRANSMISSIONS = list(range(1, 8))


def run_fig10_sweep():
    # the paper's rig forwards the UEs' beats back-to-back within the
    # connection; fig10() aligns the UE phases so arrivals coalesce
    return fig10(ue_counts=UE_COUNTS, max_k=len(TRANSMISSIONS))


@pytest.mark.benchmark(group="fig10")
def test_fig10_relay_energy_multi_ue(benchmark):
    curves = run_once(benchmark, run_fig10_sweep)

    print_header("Fig. 10 — relay energy (µAh) with multiple UEs")
    print(format_series("k", TRANSMISSIONS, curves))

    # more UEs always cost the relay more, at every connection length
    for k in range(len(TRANSMISSIONS)):
        column = [curves[f"{n} UE"][k] for n in UE_COUNTS]
        assert all(b > a for a, b in zip(column, column[1:])), f"k={k + 1}"
    # every curve is monotone in connection time
    for name, curve in curves.items():
        assert monotone_nondecreasing(curve), name
    # the *relative* impact of extra UEs shrinks as the connection grows:
    # (E_7ue / E_1ue) at k=1 must exceed the same ratio at k=7
    ratio_first = curves["7 UE"][0] / curves["1 UE"][0]
    ratio_last = curves["7 UE"][-1] / curves["1 UE"][-1]
    assert ratio_first > ratio_last
