"""The introduction's asymmetry: small in bytes, huge in signaling.

Sec. I (China Mobile's measurement of WeChat): heartbeat transmission
"accounts for only 10% of cellular data traffic, [yet] occupies 60% of
cellular signaling traffic". We run one phone's mixed workload (beats +
foreground data) through the original system, attribute layer-3 messages
and bytes to each class, and check the asymmetry — the reason operators
care about this problem at all.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.baseline.original import expected_l3_messages
from repro.baseline.traffic_driver import MixedTrafficDevice
from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.device import Smartphone
from repro.reporting import format_table, percent
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.workload.apps import WECHAT

DURATION_S = 24 * 3600.0  # a day


def run_mixed_day():
    sim = Simulator(seed=8)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    phone = Smartphone(sim, "phone", ledger=ledger, basestation=basestation)
    counters = {"hb_msgs": 0, "hb_bytes": 0, "data_msgs": 0, "data_bytes": 0}

    def send_heartbeat(message):
        counters["hb_msgs"] += 1
        counters["hb_bytes"] += message.size_bytes
        phone.modem.send(message.size_bytes, payload=message)

    def send_data(size_bytes):
        counters["data_msgs"] += 1
        counters["data_bytes"] += size_bytes
        phone.modem.send(size_bytes, payload=None)

    driver = MixedTrafficDevice(
        phone, WECHAT, make_rng(8, "mixed-day"),
        on_heartbeat=send_heartbeat, on_data=send_data, phase_fraction=0.0,
    )
    sim.run_until(DURATION_S - 1)
    driver.stop()
    sim.run_until(DURATION_S + 30)
    # attribute signaling: each transmission here is its own RRC cycle
    # (arrivals are minutes apart), so the closed forms apply per class
    hb_l3 = expected_l3_messages(counters["hb_msgs"], WECHAT.heartbeat_bytes)
    data_l3 = expected_l3_messages(
        counters["data_msgs"], WECHAT.data_message_bytes
    )
    return counters, hb_l3, data_l3, ledger.total


@pytest.mark.benchmark(group="intro")
def test_intro_bytes_vs_signaling_share(benchmark):
    counters, hb_l3, data_l3, total_l3 = run_once(benchmark, run_mixed_day)

    total_bytes = counters["hb_bytes"] + counters["data_bytes"]
    byte_share = counters["hb_bytes"] / total_bytes
    signaling_share = hb_l3 / (hb_l3 + data_l3)

    print_header("Sec. I asymmetry — a WeChat day of beats + data, one phone")
    print(format_table(
        ["Class", "Messages", "Bytes", "L3 messages"],
        [
            ["heartbeats", counters["hb_msgs"], counters["hb_bytes"], hb_l3],
            ["data", counters["data_msgs"], counters["data_bytes"], data_l3],
        ],
    ))
    print(f"heartbeat share of BYTES     : {percent(byte_share)}   "
          f"(paper: ~10%)")
    print(f"heartbeat share of SIGNALING : {percent(signaling_share)}   "
          f"(paper: ~60%)")

    # the closed-form attribution is a tight upper bound on the live
    # ledger (the few transmissions that landed inside another's RRC tail
    # shared a cycle)
    assert total_l3 <= hb_l3 + data_l3 <= total_l3 * 1.06
    # the paper's asymmetry: a sliver of the bytes...
    assert byte_share < 0.20
    # ...but a large share of the signaling
    assert signaling_share > 0.35
    assert signaling_share > 3.0 * byte_share
