"""Ablation A7 — receive-wake coalescing on/off.

The coalescing refinement (back-to-back receives share one radio wake;
see docs/calibration.md) is what lets Fig. 10/11 reproduce "the impact of
the multiple connected UEs can be neglected" at long connections. This
ablation re-runs the 7-UE rig with coalescing disabled (every receive
pays the full wake) and shows the paper's claim *fails* without it —
evidence the refinement is load-bearing, not cosmetic.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.analysis import wasted_to_saved_ratio
from repro.energy.profiles import DEFAULT_PROFILE
from repro.reporting import format_table, percent
from repro.scenarios import run_relay_scenario

N_UES = 7
PERIODS = 7

#: coalescing off: the incremental receive costs the full wake
NO_COALESCE = DEFAULT_PROFILE.replace(
    relay_receive_coalesced_uah=DEFAULT_PROFILE.relay_receive_uah
)


def ratio_for(profile):
    d2d = run_relay_scenario(n_ues=N_UES, distance_m=1.0, periods=PERIODS,
                             profile=profile, ue_phases=[0.5] * N_UES)
    base = run_relay_scenario(n_ues=N_UES, distance_m=1.0, periods=PERIODS,
                              profile=profile, mode="original",
                              ue_phases=[0.5] * N_UES)
    return wasted_to_saved_ratio(
        relay_d2d=d2d.per_device_energy_uah("relay-0"),
        relay_baseline=base.per_device_energy_uah("relay-0"),
        ue_d2d=d2d.ue_energy_uah(),
        ue_baseline=base.ue_energy_uah(),
    ), d2d.per_device_energy_uah("relay-0")


@pytest.mark.benchmark(group="ablation-coalescing")
def test_ablation_wake_coalescing(benchmark):
    def run_both():
        return ratio_for(DEFAULT_PROFILE), ratio_for(NO_COALESCE)

    (on_ratio, on_relay), (off_ratio, off_relay) = run_once(benchmark, run_both)

    print_header(
        f"Ablation A7 — wake coalescing, {N_UES} UEs × {PERIODS} periods"
    )
    print(format_table(
        ["Coalescing", "Relay energy (µAh)", "Wasted/saved ratio"],
        [
            ["ON (calibrated)", on_relay, percent(on_ratio)],
            ["OFF (full wake each)", off_relay, percent(off_ratio)],
        ],
    ))
    print("paper Fig. 11: ratio should approach ~5% with many UEs")

    # coalescing saves the relay real energy at high fan-in
    assert on_relay < 0.85 * off_relay
    # with coalescing the ratio lands near the paper's low end ...
    assert on_ratio < 0.20
    # ... without it, the claim is unreachable (stuck above ~25 %)
    assert off_ratio > 0.25
