"""Ablation A2 — prejudgment ON vs. OFF for a distant, fast-moving pair.

The prejudgment exists to "reduce the chances of short-duration D2D
connection" whose discovery+connection energy can't amortize
(Sec. III-C). We put a UE on a trajectory that leaves D2D range quickly;
with prejudgment the UE goes straight to cellular, without it the UE pays
for a doomed session and then falls back anyway.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.core.matching import MatchConfig
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import LinearMobility, StaticMobility
from repro.reporting import format_table
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s


def run_fleeting_pair(prejudgment_enabled):
    """One relay; one UE at 15 m walking away at 1 m/s."""
    sim = Simulator(seed=7)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    config = FrameworkConfig(
        matching=MatchConfig(prejudgment_enabled=prejudgment_enabled,
                             max_pair_distance_m=30.0)
    )
    framework = HeartbeatRelayFramework([], config=config)
    relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                       role=Role.RELAY, ledger=ledger, basestation=basestation,
                       d2d_medium=medium)
    ue = Smartphone(sim, "ue-0",
                    mobility=LinearMobility((15.0, 0.0), (1.0, 0.0)),
                    role=Role.UE, ledger=ledger, basestation=basestation,
                    d2d_medium=medium)
    framework.add_device(relay, phase_fraction=0.0)
    framework.add_device(ue, phase_fraction=0.01)  # beats at t=2.7 while near
    sim.run_until(2 * T - 1)
    framework.shutdown()
    sim.run_until(2 * T + 30)
    on_time = sum(
        1 for r in server.records
        if r.message.origin_device == "ue-0" and r.on_time
    )
    return ue.energy.total_uah, on_time, framework.ues["ue-0"]


@pytest.mark.benchmark(group="ablation-prejudgment")
def test_ablation_prejudgment(benchmark):
    def run_both():
        return run_fleeting_pair(True), run_fleeting_pair(False)

    (on_energy, on_delivered, on_agent), (off_energy, off_delivered, off_agent) = (
        run_once(benchmark, run_both)
    )

    print_header("Ablation A2 — prejudgment for a fleeting pair (15 m, 1 m/s)")
    rows = [
        ["prejudgment ON", on_energy, on_delivered, on_agent.matches],
        ["prejudgment OFF", off_energy, off_delivered, off_agent.matches],
    ]
    print(format_table(["Policy", "UE energy (µAh)", "Delivered", "Pairings"], rows))

    # with prejudgment the doomed pairing is refused
    assert on_agent.matches == 0
    assert off_agent.matches >= 1
    # the ablation wastes UE energy on discovery+connection for nothing
    assert off_energy > on_energy
    # delivery stays complete either way (fallback covers the break); the
    # ablated run may deliver a harmless duplicate of the relayed beat
    assert on_delivered == 2
    assert off_delivered >= 2
