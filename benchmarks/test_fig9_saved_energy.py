"""Fig. 9 — saved energy (%) of the whole system and of the UE.

Paper findings: at one transmission the D2D approach "reaches nearly the
same energy consumption as the original system" (≈ 0 % system saving); the
UE saves 55 %; at seven forwarded beats the whole system saves 36 %.

Our calibrated simulator lands at ≈ 0 % / ≈ 55 % / ≈ 27 % respectively —
the same shape, with the system plateau a little lower than the paper's
(see EXPERIMENTS.md for the accounting difference).
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.analysis import monotone_nondecreasing
from repro.experiments import fig9
from repro.reporting import format_series

TRANSMISSIONS = list(range(1, 9))


def run_fig9_sweep():
    return fig9(max_k=len(TRANSMISSIONS))


@pytest.mark.benchmark(group="fig9")
def test_fig9_saved_energy(benchmark):
    saved_system, saved_ue = run_once(benchmark, run_fig9_sweep)

    print_header("Fig. 9 — saved energy (%) vs. transmission times")
    print(format_series(
        "k", TRANSMISSIONS,
        {"system %": saved_system, "ue %": saved_ue},
    ))
    print(f"paper: system ~0% @1, 36% @7; ue ~55% @1")

    # at one transmission, D2D ≈ original for the whole system
    assert abs(saved_system[0]) < 8.0
    # the UE saves ≈ 55 % on its first transmission (calibration anchor)
    assert saved_ue[0] == pytest.approx(55.0, abs=5.0)
    # system saving grows monotonically and reaches a substantial level at 7
    assert monotone_nondecreasing(saved_system, tolerance=0.5)
    assert 20.0 <= saved_system[6] <= 45.0
    # the UE's saving keeps improving as overheads amortize
    assert saved_ue[-1] > 70.0
    # UE saving always dominates system saving
    assert all(u > s for u, s in zip(saved_ue, saved_system))
