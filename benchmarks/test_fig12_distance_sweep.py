"""Fig. 12 — energy consumption vs. D2D communication distance.

Paper setup: distances up to 15 m. Findings: "with the communication
distance increased, Wi-Fi Direct consumes more energy apparently. We could
predict that UE might consume more energy than original system when the
communication distance beyond a certain value."
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.analysis import crossover_index, monotone_nondecreasing
from repro.core.modes import breakeven_distance_m
from repro.reporting import format_series
from repro.scenarios import run_relay_scenario

DISTANCES = (1.0, 3.0, 5.0, 8.0, 10.0, 12.0, 15.0)
PERIODS = 5


def run_fig12_sweep():
    from repro.experiments import fig12

    return fig12(distances=DISTANCES, periods=PERIODS)


@pytest.mark.benchmark(group="fig12")
def test_fig12_energy_vs_distance(benchmark):
    ue, relay, original = run_once(benchmark, run_fig12_sweep)

    print_header(f"Fig. 12 — energy (µAh) vs. distance, {PERIODS} transmissions")
    print(format_series(
        "d(m)", list(DISTANCES),
        {
            "ue": ue,
            "relay": relay,
            "original": [original] * len(DISTANCES),
            "saved_ue": [original - u for u in ue],
        },
    ))
    breakeven = breakeven_distance_m(expected_beats=PERIODS)
    print(f"predicted UE-vs-cellular breakeven distance: {breakeven:.1f} m")

    # UE energy rises with distance (TX power scaling)
    assert monotone_nondecreasing(ue)
    assert ue[-1] > 2.0 * ue[0]
    # the relay's cost is distance-insensitive (RX side): < 5 % variation
    assert max(relay) - min(relay) < 0.05 * relay[0]
    # within the paper's 0-15 m sweep the UE stays below the original
    # system — the crossover is beyond the sweep
    assert crossover_index(ue, [original] * len(DISTANCES)) == -1
    # ...but the predicted breakeven exists at a finite larger distance
    assert 15.0 < breakeven < 100.0


@pytest.mark.benchmark(group="fig12")
def test_fig12_matching_prefers_nearest(benchmark):
    """The design consequence the paper draws: 'we try to match a relay
    with the UE as close as possible for lower energy consumption'."""

    def run():
        near = run_relay_scenario(n_ues=1, distance_m=1.0, periods=PERIODS)
        far = run_relay_scenario(n_ues=1, distance_m=15.0, periods=PERIODS)
        return near.ue_energy_uah(), far.ue_energy_uah()

    near_ue, far_ue = run_once(benchmark, run)
    assert near_ue < far_ue
