"""Four-way baseline comparison on an identical mixed workload.

The paper's introduction surveys the alternatives before proposing D2D
relaying: piggybacking heartbeats on other traffic ([2]) and RRC
mechanisms like fast dormancy ([26], "aggravates signaling storm while
reducing energy consumption"). This bench runs all four systems over the
*same* workload — two phones, periodic beats plus identical Poisson
foreground data — and tabulates the trade-off the paper argues:

- piggybacking only helps when foreground traffic exists;
- fast dormancy saves energy but multiplies RRC cycles (signaling);
- D2D relaying is the only one that cuts both.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.baseline.fast_dormancy import FAST_DORMANCY_PROFILE, FastDormancySystem
from repro.baseline.original import OriginalSystem
from repro.baseline.piggyback import PiggybackSystem
from repro.baseline.traffic_driver import MixedTrafficDevice
from repro.cellular.basestation import BaseStation
from repro.cellular.rrc import WCDMA_PROFILE
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import HeartbeatRelayFramework
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import StaticMobility
from repro.reporting import format_table
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s
PERIODS = 8
SEED = 1234
#: Set per-case by the bench: 0.0 = idle phones, 1.0 = busy phones.
DATA_RATE_SCALE = 1.0


def _network(rrc_profile=WCDMA_PROFILE, with_d2d=False):
    sim = Simulator(seed=SEED)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT) if with_d2d else None
    return sim, ledger, basestation, server, medium


def _phones(sim, ledger, basestation, medium=None, roles=(Role.STANDALONE,) * 2,
            rrc_profile=WCDMA_PROFILE):
    positions = [(0.0, 0.0), (1.0, 0.0)]
    return [
        Smartphone(sim, f"dev-{i}", mobility=StaticMobility(positions[i]),
                   role=roles[i], ledger=ledger, basestation=basestation,
                   d2d_medium=medium, rrc_profile=rrc_profile)
        for i in range(2)
    ]


def _finish(sim, shutdown):
    sim.run_until(PERIODS * T - 1)
    shutdown()
    sim.run_until(PERIODS * T + 30)


def _summarize(name, ledger, phones, server):
    return [
        name,
        ledger.total,
        ledger.total_cycles,
        sum(p.energy.total_uah for p in phones),
        1.0 if not server.records
        else sum(r.on_time for r in server.records) / len(server.records),
    ]


def run_original():
    sim, ledger, basestation, server, __ = _network()
    phones = _phones(sim, ledger, basestation)
    system = OriginalSystem(app=STANDARD_APP)
    drivers = []
    for i, phone in enumerate(phones):
        system.add_device(phone, phase_fraction=0.25 + 0.5 * i)
        # identical foreground data, sent immediately (original behaviour);
        # the heartbeat side is owned by OriginalSystem, so the driver only
        # contributes the data process (heartbeats suppressed via scale)
        drivers.append(_attach_data(phone))
    _finish(sim, lambda: (system.shutdown(), [d() for d in drivers]))
    return _summarize("original", ledger, phones, server)


def _attach_data(phone):
    """Poisson foreground data from a per-device stream shared by every
    system (same seed + stream name → identical arrival times)."""
    rng = make_rng(SEED, f"data-{phone.device_id}")
    rate = STANDARD_APP.other_message_rate_per_s() * DATA_RATE_SCALE
    stopped = []
    if rate <= 0:
        return lambda: stopped.append(True)

    def tick():
        if stopped or not phone.alive:
            return
        phone.modem.send(STANDARD_APP.data_message_bytes, payload=None)
        phone.sim.schedule(rng.expovariate(rate), tick, name="fg_data")

    phone.sim.schedule(rng.expovariate(rate), tick, name="fg_data")
    return lambda: stopped.append(True)


def run_piggyback():
    sim, ledger, basestation, server, __ = _network()
    phones = _phones(sim, ledger, basestation)
    system = PiggybackSystem(app=STANDARD_APP, data_rate_scale=0.0)
    stoppers = []
    for i, phone in enumerate(phones):
        # beats via the piggyback policy; data via the shared stream, but
        # routed through the policy so beats can ride it
        system.add_device(phone, make_rng(SEED, f"unused-{i}"),
                          phase_fraction=0.25 + 0.5 * i)
        policy = system.policies[phone.device_id]
        rng = make_rng(SEED, f"data-{phone.device_id}")
        rate = STANDARD_APP.other_message_rate_per_s() * DATA_RATE_SCALE
        stopped = []
        if rate <= 0:
            stoppers.append(lambda stopped=stopped: stopped.append(True))
            continue

        def tick(policy=policy, rng=rng, rate=rate, stopped=stopped, phone=phone):
            if stopped or not phone.alive:
                return
            policy.on_data(STANDARD_APP.data_message_bytes)
            phone.sim.schedule(
                rng.expovariate(rate), tick, name="fg_data"
            )

        sim.schedule(rng.expovariate(rate), tick, name="fg_data")
        stoppers.append(lambda stopped=stopped: stopped.append(True))
    _finish(sim, lambda: (system.shutdown(), [s() for s in stoppers]))
    row = _summarize("piggyback [2]", ledger, phones, server)
    return row, system.piggyback_ratio


def run_fast_dormancy():
    sim, ledger, basestation, server, __ = _network()
    phones = _phones(sim, ledger, basestation, rrc_profile=FAST_DORMANCY_PROFILE)
    system = FastDormancySystem(app=STANDARD_APP, data_rate_scale=0.0)
    stoppers = []
    for i, phone in enumerate(phones):
        system.add_device(phone, make_rng(SEED, f"unused-{i}"),
                          phase_fraction=0.25 + 0.5 * i)
        stoppers.append(_attach_data(phone))
    _finish(sim, lambda: (system.shutdown(), [s() for s in stoppers]))
    return _summarize("fast dormancy [26]", ledger, phones, server)


def run_d2d_framework():
    sim, ledger, basestation, server, medium = _network(with_d2d=True)
    phones = _phones(sim, ledger, basestation, medium=medium,
                     roles=(Role.RELAY, Role.UE))
    framework = HeartbeatRelayFramework([], app=STANDARD_APP)
    framework.add_device(phones[0], phase_fraction=0.25)
    framework.add_device(phones[1], phase_fraction=0.75)
    stoppers = [_attach_data(phone) for phone in phones]
    _finish(sim, lambda: (framework.shutdown(), [s() for s in stoppers]))
    return _summarize("d2d framework", ledger, phones, server)


def run_extended_period():
    """The other [2] strategy: double the heartbeat period.

    Halves beat-driven signaling and energy for free — except the server's
    offline-detection window (3×period) doubles too, "impact[ing] the
    instantaneity of these IM apps", which is why app developers refuse it.
    """
    import dataclasses as _dc

    sim, ledger, basestation, server, __ = _network()
    phones = _phones(sim, ledger, basestation)
    slow_app = _dc.replace(STANDARD_APP, heartbeat_period_s=2 * T)
    system = OriginalSystem(app=slow_app)
    drivers = []
    for i, phone in enumerate(phones):
        system.add_device(phone, phase_fraction=0.25 + 0.5 * i)
        drivers.append(_attach_data(phone))
    _finish(sim, lambda: (system.shutdown(), [d() for d in drivers]))
    row = _summarize("extended period [2]", ledger, phones, server)
    return row, slow_app.server_expiry_s


def _run_all(scale):
    global DATA_RATE_SCALE
    DATA_RATE_SCALE = scale
    original = run_original()
    piggyback, ratio = run_piggyback()
    fast = run_fast_dormancy()
    d2d = run_d2d_framework()
    return original, piggyback, ratio, fast, d2d


def _tabulate(title, original, piggyback, ratio, fast, d2d):
    print_header(title)
    print(format_table(
        ["System", "L3 msgs", "RRC cycles", "Energy (µAh)", "On-time"],
        [original, piggyback, fast, d2d],
    ))
    print(f"piggyback ride ratio: {ratio:.0%}")
    names = ("original", "piggyback", "fast", "d2d")
    l3 = dict(zip(names, (original[1], piggyback[1], fast[1], d2d[1])))
    energy = dict(zip(names, (original[3], piggyback[3], fast[3], d2d[3])))
    on_time = (original[4], piggyback[4], fast[4], d2d[4])
    assert all(v == 1.0 for v in on_time)
    return l3, energy


@pytest.mark.benchmark(group="baselines")
def test_baseline_comparison_idle_phones(benchmark):
    """No foreground traffic: piggybacking has nothing to ride."""
    original, piggyback, ratio, fast, d2d = run_once(benchmark, _run_all, 0.0)
    l3, energy = _tabulate(
        f"Baselines — idle phones (beats only), {PERIODS} periods",
        original, piggyback, ratio, fast, d2d,
    )
    # piggybacking degenerates to the original system
    assert ratio == 0.0
    assert l3["piggyback"] == l3["original"]
    # D2D halves signaling even with zero foreground traffic
    assert l3["d2d"] <= 0.55 * l3["original"]
    # fast dormancy saves energy but gives the operator nothing
    assert l3["fast"] == l3["original"]
    assert energy["fast"] < energy["original"]
    assert energy["d2d"] < energy["original"]


@pytest.mark.benchmark(group="baselines")
def test_extended_period_trades_freshness(benchmark):
    """Doubling the period halves beat costs but doubles staleness."""

    def run_both():
        global DATA_RATE_SCALE
        DATA_RATE_SCALE = 0.0
        return run_original(), run_extended_period()

    original, (extended, offline_window) = run_once(benchmark, run_both)

    print_header("Extended-period strategy [2] vs. original (idle phones)")
    print(format_table(
        ["System", "L3 msgs", "RRC cycles", "Energy (µAh)", "On-time"],
        [original, extended],
    ))
    print(f"offline-detection window: {STANDARD_APP.server_expiry_s:.0f} s → "
          f"{offline_window:.0f} s")

    # the appeal: roughly half the signaling and energy
    assert extended[1] <= 0.6 * original[1]
    assert extended[3] <= 0.6 * original[3]
    # the cost the paper cites: presence staleness doubles
    assert offline_window == pytest.approx(2 * STANDARD_APP.server_expiry_s)


@pytest.mark.benchmark(group="baselines")
def test_baseline_comparison_busy_phones(benchmark):
    """Active foreground traffic: each alternative shows its niche."""
    original, piggyback, ratio, fast, d2d = run_once(benchmark, _run_all, 1.0)
    l3, energy = _tabulate(
        f"Baselines — busy phones (beats + Poisson data), {PERIODS} periods",
        original, piggyback, ratio, fast, d2d,
    )
    # with traffic to ride, piggybacking becomes competitive on signaling
    assert ratio > 0.3
    assert l3["piggyback"] < l3["original"]
    # fast dormancy AGGRAVATES signaling: cycles that shared a tail split
    assert l3["fast"] > l3["original"]
    assert energy["fast"] < energy["original"]
    # the framework still cuts both axes vs. the original system
    assert l3["d2d"] < l3["original"]
    assert energy["d2d"] < energy["original"]
