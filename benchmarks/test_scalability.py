"""Simulator scalability: wall-clock cost of growing crowds.

Not a paper artifact — a regression bench for the reproduction itself.
Discrete-event cost should grow near-linearly with the device count
(events per device per period are constant); this bench times 30-minute
crowds at three scales and sanity-checks throughput so a future
accidental O(n²) hot path shows up as a wall-clock regression.
"""

import time

import pytest

from benchmarks.conftest import print_header
from repro.mobility.space import Arena
from repro.scenarios import run_crowd_scenario


def run_crowd(n_devices):
    return run_crowd_scenario(
        n_devices=n_devices,
        relay_fraction=0.2,
        duration_s=1800.0,
        arena=Arena(120.0, 120.0),
        hotspots=max(2, n_devices // 20),
        seed=99,
    )


@pytest.mark.benchmark(group="scalability")
@pytest.mark.parametrize("n_devices", [25, 50, 100])
def test_crowd_scalability(benchmark, n_devices):
    result = benchmark.pedantic(
        run_crowd, args=(n_devices,), iterations=1, rounds=1
    )
    events = result.context.sim.events_fired
    print_header(f"Scalability — {n_devices} devices, 30 min simulated")
    print(f"events fired: {events}  "
          f"beats delivered: {result.metrics.delivery.received}  "
          f"on-time: {result.on_time_fraction():.0%}")
    assert result.on_time_fraction() == 1.0
    # events grow roughly linearly with devices: bound events-per-device
    assert events / n_devices < 2000


@pytest.mark.benchmark(group="scalability")
def test_events_scale_linearly(benchmark):
    """events(100 devices) must stay within ~3x of 2*events(50 devices)."""

    def run_pair():
        small = run_crowd(50)
        large = run_crowd(100)
        return small.context.sim.events_fired, large.context.sim.events_fired

    small_events, large_events = benchmark.pedantic(
        run_pair, iterations=1, rounds=1
    )
    ratio = large_events / small_events
    print(f"events: 50dev={small_events} 100dev={large_events} "
          f"ratio={ratio:.2f}")
    assert ratio < 3.0
