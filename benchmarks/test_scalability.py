"""Simulator scalability: wall-clock cost of growing crowds.

Not a paper artifact — a regression bench for the reproduction itself.
Discrete-event cost should grow near-linearly with the device count
(events per device per period are constant); this bench times 30-minute
crowds at three scales and sanity-checks throughput so a future
accidental O(n²) hot path shows up as a wall-clock regression.

Crowd runs go through :func:`repro.scenarios.crowd_metrics_runner`, the
picklable runner the sweep executor fans out; the linearity pair runs as
an actual ``workers=2`` grid so the two crowd sizes simulate
concurrently and the measured speedup is printed via ``repro.metrics``.
"""

import functools

import pytest

from benchmarks.conftest import print_header
from repro.scenarios import crowd_metrics_runner
from repro.sweep import grid_sweep

CROWD_KWARGS = dict(relay_fraction=0.2, duration_s=1800.0, arena_m=120.0,
                    seed=99)


@pytest.mark.benchmark(group="scalability")
@pytest.mark.parametrize("n_devices", [25, 50, 100])
def test_crowd_scalability(benchmark, n_devices):
    metrics = benchmark.pedantic(
        crowd_metrics_runner, args=(n_devices,), kwargs=CROWD_KWARGS,
        iterations=1, rounds=1,
    )
    events = metrics["events_fired"]
    print_header(f"Scalability — {n_devices} devices, 30 min simulated")
    print(f"events fired: {events:.0f}  "
          f"beats delivered: {metrics['received']:.0f}  "
          f"on-time: {metrics['on_time_fraction']:.0%}")
    assert metrics["on_time_fraction"] == 1.0
    # events grow roughly linearly with devices: bound events-per-device
    assert events / n_devices < 2000


@pytest.mark.benchmark(group="scalability")
def test_events_scale_linearly(benchmark):
    """events(100 devices) must stay within ~3x of 2*events(50 devices)."""

    def run_pair():
        return grid_sweep(
            {"n_devices": [50, 100]},
            functools.partial(crowd_metrics_runner, **CROWD_KWARGS),
            workers=2,
        )

    sweep = benchmark.pedantic(run_pair, iterations=1, rounds=1)
    small_events, large_events = (
        point.metrics["events_fired"] for point in sweep.points
    )
    ratio = large_events / small_events
    print(f"events: 50dev={small_events:.0f} 100dev={large_events:.0f} "
          f"ratio={ratio:.2f}")
    print(sweep.telemetry.summary())
    assert ratio < 3.0
    assert sweep.telemetry.mode == "process-pool"
    assert all(t.seconds > 0.0 for t in sweep.telemetry.timings)
    assert sweep.ok and sweep.telemetry.errors == 0
