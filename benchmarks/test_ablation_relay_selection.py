"""Ablation A6 — operator relay selection: planned vs. random.

The paper has the operator "select relays among the participating
smartphone users" but leaves the selection policy open. With a tight
relay budget in a spread-out crowd, WHO gets appointed matters: a random
pick can strand whole hotspots out of D2D range (their beats all fall
back to cellular), while the greedy dominating-set planner
(:mod:`repro.core.operator`) covers every cluster.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.mobility.space import Arena
from repro.reporting import format_table
from repro.scenarios import run_crowd_scenario

COMMON = dict(
    n_devices=40,
    relay_fraction=0.1,  # only 4 relays for 4 hotspots
    duration_s=1200.0,
    arena=Arena(150.0, 150.0),
    hotspots=4,
    capacity=12,
)
SEEDS = (1, 2, 3)


def run_selection_comparison():
    results = {}
    for strategy in ("greedy", "random"):
        l3, forwarded, fallbacks = 0, 0, 0
        for seed in SEEDS:
            run = run_crowd_scenario(seed=seed, relay_selection=strategy, **COMMON)
            assert run.on_time_fraction() == 1.0
            l3 += run.total_l3()
            forwarded += run.framework.total_beats_forwarded()
            fallbacks += run.framework.total_cellular_fallbacks()
        n = len(SEEDS)
        results[strategy] = (l3 / n, forwarded / n, fallbacks / n)
    return results


@pytest.mark.benchmark(group="ablation-selection")
def test_ablation_relay_selection(benchmark):
    results = run_once(benchmark, run_selection_comparison)

    print_header(
        "Ablation A6 — relay appointment with a tight budget "
        f"(4 relays / {COMMON['n_devices']} devices, 4 hotspots, "
        f"mean of {len(SEEDS)} seeds)"
    )
    print(format_table(
        ["Selection", "L3 msgs", "Beats via D2D", "Cellular fallbacks"],
        [[name, *values] for name, values in results.items()],
    ))

    greedy_l3, greedy_fwd, greedy_fb = results["greedy"]
    random_l3, random_fwd, random_fb = results["random"]
    # planned placement carries more beats over D2D...
    assert greedy_fwd > random_fwd
    # ...strands fewer UEs on cellular...
    assert greedy_fb < random_fb
    # ...and cuts the operator's signaling bill substantially
    assert greedy_l3 < 0.7 * random_l3
