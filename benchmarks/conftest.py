"""Shared helpers for the reproduction benches.

Every bench regenerates one of the paper's tables or figures, prints it in
a paper-comparable layout, and asserts the *shape* of the result (who
wins, by roughly what factor, where crossovers fall) rather than absolute
numbers — our substrate is a calibrated simulator, not the authors'
Galaxy S4 + WCDMA testbed.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The simulations are deterministic, so repeated timing rounds would
    only re-measure identical work; one round keeps the bench suite fast
    while still reporting a wall-clock figure per experiment.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
