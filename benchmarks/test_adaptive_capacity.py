"""Adaptive relay capacity — graceful resignation vs. battery death.

Sec. III-C lets relay users scale their collection capacity with their
"situations in reality, such as their battery usage". The
:class:`AdaptiveCapacityPolicy` automates that: capacity shrinks as the
battery drains and the relay resigns before dying. This bench gives two
relays the same small battery; the fixed one relays flat-out until the
battery kills it mid-uplink risk-window, the adaptive one steps down and
bows out with charge to spare. Delivery is 100 % either way (the
fallback machinery absorbs both exits) — what changes is the relay
owner's outcome.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.adaptive import AdaptiveCapacityConfig, AdaptiveCapacityPolicy
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.core.scheduler import SchedulerConfig
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.energy.battery import Battery
from repro.mobility.models import StaticMobility
from repro.reporting import format_table, percent
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s
PERIODS = 10
BATTERY_MAH = 14.0  # tiny heartbeat budget: ~10 loaded relay-periods
N_UES = 6


def run_policy(adaptive):
    sim = Simulator(seed=5)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework(
        [], app=STANDARD_APP,
        config=FrameworkConfig(scheduler=SchedulerConfig(capacity=10)),
    )
    battery = Battery(capacity_mah=BATTERY_MAH)
    relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                       role=Role.RELAY, ledger=ledger, basestation=basestation,
                       d2d_medium=medium, battery=battery)
    framework.add_device(relay, phase_fraction=0.0)
    for i in range(N_UES):
        ue = Smartphone(sim, f"ue-{i}",
                        mobility=StaticMobility((1.0, float(i))),
                        role=Role.UE, ledger=ledger, basestation=basestation,
                        d2d_medium=medium)
        framework.add_device(ue, phase_fraction=0.3 + 0.1 * i)
    policy = None
    if adaptive:
        policy = AdaptiveCapacityPolicy(
            framework.relays["relay-0"],
            AdaptiveCapacityConfig(max_capacity=10, resign_level=0.5,
                                   full_level=0.9),
        ).start()
    sim.run_until(PERIODS * T - 1)
    framework.shutdown()
    sim.run_until(PERIODS * T + 60)
    on_time = {
        (r.message.origin_device, r.message.seq)
        for r in server.records if r.on_time
    }
    return {
        "alive": relay.alive,
        "battery": battery.level,
        "resigned": policy.resigned if policy else False,
        "collected": framework.total_beats_collected(),
        "delivered": len(on_time),
    }


@pytest.mark.benchmark(group="adaptive")
def test_adaptive_capacity_graceful_exit(benchmark):
    def run_both():
        return run_policy(adaptive=False), run_policy(adaptive=True)

    fixed, adaptive = run_once(benchmark, run_both)

    print_header(
        f"Adaptive capacity — relay on an {BATTERY_MAH:.0f} mAh budget, "
        f"{N_UES} UEs, {PERIODS} periods"
    )
    rows = [
        ["fixed capacity", fixed["alive"], percent(fixed["battery"]),
         fixed["resigned"], fixed["collected"], fixed["delivered"]],
        ["adaptive", adaptive["alive"], percent(adaptive["battery"]),
         adaptive["resigned"], adaptive["collected"], adaptive["delivered"]],
    ]
    print(format_table(
        ["Policy", "Relay alive", "Battery left", "Resigned",
         "Beats collected", "Beats on time"],
        rows,
    ))

    # the fixed relay burns to empty and dies mid-run
    assert not fixed["alive"]
    assert fixed["battery"] == 0.0
    # the adaptive relay steps down in time and survives with reserve
    assert adaptive["alive"]
    assert adaptive["resigned"]
    assert adaptive["battery"] > 0.1
    # it also collected less — the price of prudence
    assert adaptive["collected"] < fixed["collected"]
    # every UE beat arrives on time under BOTH policies (fallback safety
    # net); the relay's own beats stop at death, so the fixed run loses
    # only those
    ue_expected = PERIODS * N_UES
    assert fixed["delivered"] >= ue_expected
    assert adaptive["delivered"] >= ue_expected + PERIODS - 1
