"""End-to-end push reachability under crowd load (original vs. framework).

The paging-relief bench replays pages against a recorded timeline; this
one goes end-to-end with the live :class:`PushNotificationService`: the
server pushes to random crowd members *during* the run, each successful
push pages the phone through the shared control channel and wakes its
modem. Heartbeat-driven presence is maintained by the running system
(relayed beats keep their origin online), so this measures the whole
chain the paper's motivation describes.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.cellular.paging import PagingChannel, PagingConfig
from repro.reporting import format_table, percent
from repro.scenarios import run_crowd_scenario
from repro.workload.push import PushNotificationService

N_DEVICES = 30
DURATION_S = 1500.0
PAGING = PagingConfig(slots_per_second=1.0, window_s=10.0, retry_after_s=2.0)


def run_mode(mode):
    services = []

    def pre_run(context, devices):
        paging = PagingChannel(context.sim, context.ledger, PAGING)
        service = PushNotificationService(
            context.sim, paging, server=context.server
        )
        rng = context.sim.rng.get("push-targets")
        ids = sorted(devices)
        for device_id, device in devices.items():
            service.register_client(device_id, device.modem)
        # a push every 15 s to a random phone, starting after presence
        # has been established
        t = 400.0
        while t < DURATION_S - 60.0:
            target = rng.choice(ids)
            context.sim.schedule_at(
                t, service.push, target, f"msg@{t:.0f}", name="push"
            )
            t += 15.0
        services.append(service)

    result = run_crowd_scenario(
        n_devices=N_DEVICES, relay_fraction=0.2, duration_s=DURATION_S,
        seed=31, mode=mode, pre_run=pre_run,
    )
    return result, services[0]


@pytest.mark.benchmark(group="push")
def test_push_reachability(benchmark):
    def run_both():
        return run_mode("original"), run_mode("d2d")

    (base, base_push), (d2d, d2d_push) = run_once(benchmark, run_both)

    rows = []
    for name, result, push in (("original", base, base_push),
                               ("d2d", d2d, d2d_push)):
        total = len(push.results)
        rows.append([
            name, result.total_l3(), total, push.delivered_count,
            str(push.failure_breakdown()),
            f"{push.mean_latency_s():.1f}s",
        ])
    print_header(
        f"Push reachability — {N_DEVICES}-device crowd, pushes every 15 s"
    )
    print(format_table(
        ["System", "L3 msgs", "Pushes", "Delivered", "Failures",
         "Mean latency"],
        rows,
    ))

    base_rate = base_push.delivered_count / len(base_push.results)
    d2d_rate = d2d_push.delivered_count / len(d2d_push.results)
    print(f"delivery rate: original {percent(base_rate)} → d2d {percent(d2d_rate)}")

    # presence is maintained in both systems: no "offline" failures
    assert "offline" not in base_push.failure_breakdown()
    assert "offline" not in d2d_push.failure_breakdown()
    # the storm costs the original system real pushes; the framework
    # relieves the channel and delivers more
    assert d2d_push.delivered_count > base_push.delivered_count
    assert d2d_rate > 0.8
    assert d2d_rate > base_rate + 0.2  # a real, large reachability gain
