"""Ablation A5 — network generation (WCDMA vs. LTE RRC profile).

The paper notes that RRC-modifying schemes "vary in different cellular
networks" and "would be dropped with the development of cellular
networks", while the D2D approach is network-independent. We re-run the
headline pair experiment under an LTE-flavoured RRC/energy profile and
check that the framework's benefits carry over unchanged in shape.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.analysis import saved_percent
from repro.cellular.rrc import LTE_PROFILE, WCDMA_3STATE_PROFILE, WCDMA_PROFILE
from repro.energy.profiles import PROFILE_VARIANTS
from repro.reporting import format_table
from repro.scenarios import run_relay_scenario

PERIODS = 7


def run_profile_matrix():
    results = {}
    for name, rrc, energy in (
        ("wcdma", WCDMA_PROFILE, PROFILE_VARIANTS["default"]),
        ("wcdma-3state", WCDMA_3STATE_PROFILE, PROFILE_VARIANTS["default"]),
        ("lte", LTE_PROFILE, PROFILE_VARIANTS["lte"]),
    ):
        d2d = run_relay_scenario(
            n_ues=1, periods=PERIODS, rrc_profile=rrc, profile=energy
        )
        base = run_relay_scenario(
            n_ues=1, periods=PERIODS, rrc_profile=rrc, profile=energy,
            mode="original",
        )
        results[name] = {
            "signaling_saved": saved_percent(base.total_l3(), d2d.total_l3()),
            "energy_saved": saved_percent(
                base.system_energy_uah(), d2d.system_energy_uah()
            ),
            "ue_saved": saved_percent(
                base.per_device_energy_uah("ue-0"),
                d2d.per_device_energy_uah("ue-0"),
            ),
            "on_time": d2d.on_time_fraction(),
        }
    return results


@pytest.mark.benchmark(group="ablation-network")
def test_ablation_network_profile(benchmark):
    results = run_once(benchmark, run_profile_matrix)

    print_header("Ablation A5 — framework benefit across network profiles")
    rows = [
        [name, r["signaling_saved"], r["energy_saved"], r["ue_saved"], r["on_time"]]
        for name, r in results.items()
    ]
    print(format_table(
        ["Network", "Signaling saved %", "System energy saved %",
         "UE energy saved %", "On-time"],
        rows,
    ))

    for name, r in results.items():
        # the framework's value is network-independent: both generations
        # show the same qualitative wins
        assert r["signaling_saved"] >= 49.0, name
        assert r["energy_saved"] > 15.0, name
        assert r["ue_saved"] > 60.0, name
        assert r["on_time"] == 1.0, name
