"""Ablation A1 — Algorithm 1 vs. immediate forwarding.

"Without the scheduling strategy, the proposed framework would consume
more energy than the original system and lose the signaling-saving
feature" (Sec. III-C). We ablate aggregation by setting the relay
capacity to 1 (every collected beat is flushed immediately, carrying at
most the relay's pending own beat) and compare signaling and energy
against the full scheduler and the original system.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.reporting import format_table
from repro.scenarios import run_relay_scenario

PERIODS = 6
N_UES = 3


def run_ablation():
    full = run_relay_scenario(n_ues=N_UES, periods=PERIODS, capacity=10)
    no_agg = run_relay_scenario(n_ues=N_UES, periods=PERIODS, capacity=1)
    base = run_relay_scenario(n_ues=N_UES, periods=PERIODS, mode="original")
    return full, no_agg, base


@pytest.mark.benchmark(group="ablation-scheduler")
def test_ablation_scheduling_algorithm(benchmark):
    full, no_agg, base = run_once(benchmark, run_ablation)

    print_header("Ablation A1 — Algorithm 1 vs. immediate forwarding")
    rows = [
        ["original", base.total_l3(), base.system_energy_uah(),
         base.on_time_fraction()],
        ["no aggregation (M=1)", no_agg.total_l3(), no_agg.system_energy_uah(),
         no_agg.on_time_fraction()],
        ["full scheduler (M=10)", full.total_l3(), full.system_energy_uah(),
         full.on_time_fraction()],
    ]
    print(format_table(["System", "L3 msgs", "Energy (µAh)", "On-time"], rows))

    # the full scheduler dominates the ablation on both axes
    assert full.total_l3() < no_agg.total_l3()
    assert full.system_energy_uah() < no_agg.system_energy_uah()
    # and the ablated system loses most of the signaling saving vs. original
    full_saving = 1 - full.total_l3() / base.total_l3()
    ablated_saving = 1 - no_agg.total_l3() / base.total_l3()
    assert full_saving > 0.5
    assert ablated_saving < full_saving * 0.75
    # correctness is unaffected either way
    assert full.on_time_fraction() == 1.0
    assert no_agg.on_time_fraction() == 1.0
