"""Signaling-storm crowd experiment (the paper's Sec. I motivation).

Not a numbered figure, but the scenario the whole paper motivates:
"frequent heartbeat transmissions by heavy smartphone usage in crowded
areas often lead to serious overload in control channel". We simulate a
clustered crowd with and without the framework and measure control-channel
load at the base station.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.analysis import signaling_reduction
from repro.reporting import format_table, percent
from repro.scenarios import run_crowd_scenario

N_DEVICES = 40
DURATION_S = 1800.0


def run_storm_comparison():
    d2d = run_crowd_scenario(
        n_devices=N_DEVICES, relay_fraction=0.2, duration_s=DURATION_S, seed=11
    )
    base = run_crowd_scenario(
        n_devices=N_DEVICES, relay_fraction=0.2, duration_s=DURATION_S,
        mode="original", seed=11,
    )
    return d2d, base


@pytest.mark.benchmark(group="storm")
def test_crowd_signaling_storm(benchmark):
    d2d, base = run_once(benchmark, run_storm_comparison)

    d2d_peak = d2d.context.basestation.peak_signaling_rate(window_s=60.0)
    base_peak = base.context.basestation.peak_signaling_rate(window_s=60.0)
    reduction = signaling_reduction(base.total_l3(), d2d.total_l3())

    print_header(f"Signaling storm — {N_DEVICES}-device crowd, 30 min")
    rows = [
        ["original", base.total_l3(), base_peak, base.on_time_fraction()],
        ["d2d framework", d2d.total_l3(), d2d_peak, d2d.on_time_fraction()],
    ]
    print(format_table(
        ["System", "L3 msgs", "Peak L3/s (60 s win)", "On-time"], rows,
    ))
    print(f"total signaling reduction: {percent(reduction)}")
    print(f"beats forwarded via D2D: {d2d.framework.total_beats_forwarded()}"
          f" / fallbacks: {d2d.framework.total_cellular_fallbacks()}")

    # substantial signaling relief in the crowd
    assert reduction > 0.3
    # delivery does not regress
    assert d2d.on_time_fraction() == 1.0
    assert base.on_time_fraction() == 1.0
    # both systems carried the same heartbeat workload
    assert (
        d2d.metrics.delivery.received >= base.metrics.delivery.received
    )  # duplicates allowed, losses not
