"""Fig. 13 — energy consumption vs. heartbeat message size.

Paper setup: 54 B standard size scaled 1×-5× (up to ~300 B, the realistic
heartbeat range). Finding: "the energy consumption stays almost constant,
which is appropriate for small-sized messages."
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.reporting import format_series
from repro.scenarios import run_relay_scenario

MULTIPLIERS = (1, 2, 3, 4, 5)
BASE_SIZE = 54
PERIODS = 3


def run_fig13_sweep():
    from repro.experiments import fig13

    return fig13(multipliers=MULTIPLIERS, base_size=BASE_SIZE,
                 periods=PERIODS)


@pytest.mark.benchmark(group="fig13")
def test_fig13_energy_vs_message_size(benchmark):
    series = run_once(benchmark, run_fig13_sweep)

    print_header("Fig. 13 — energy (µAh) vs. message size (1×-5× of 54 B)")
    print(format_series(
        "size", [f"{m}X" for m in MULTIPLIERS], series,
    ))

    # "energy consumption stays almost constant" across the realistic
    # heartbeat size range: < 12 % spread on every curve
    for name, curve in series.items():
        spread = (max(curve) - min(curve)) / min(curve)
        assert spread < 0.12, (name, spread)
    # the ordering UE < original < relay holds at every size
    for k in range(len(MULTIPLIERS)):
        assert series["ue"][k] < series["original"][k] < series["relay"][k]
