"""Fig. 8 — energy vs. transmission times (UE / relay / original / savings).

Paper setup: one relay + one UE at 1 m, 54 B beats; x-axis is the number
of heartbeats forwarded during the D2D connection. Findings to reproduce:

- UE energy grows far slower than relay and original;
- relay is always slightly above the original system (its own beats plus
  the receive work), with a modest gap;
- the system's saved energy grows with connection time.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.analysis import monotone_nondecreasing
from repro.experiments import fig8
from repro.reporting import format_series

TRANSMISSIONS = list(range(1, 9))


def run_fig8_sweep():
    return fig8(max_k=len(TRANSMISSIONS))


@pytest.mark.benchmark(group="fig8")
def test_fig8_energy_vs_transmissions(benchmark):
    series = run_once(benchmark, run_fig8_sweep)

    print_header("Fig. 8 — energy (µAh) vs. transmission times, 1 relay + 1 UE @ 1 m")
    print(format_series("k", TRANSMISSIONS, series))

    ue, relay, original = series["ue"], series["relay"], series["original"]
    # every curve grows with connection time
    for name in ("ue", "relay", "original"):
        assert monotone_nondecreasing(series[name]), name
    # "the increased range of the UE largely falls behind the relay and
    # the original system"
    ue_growth = ue[-1] - ue[0]
    assert ue_growth < 0.25 * (original[-1] - original[0])
    # "the energy consumption of the relay is always slightly higher than
    # that of original system"
    for k in range(len(TRANSMISSIONS)):
        assert relay[k] > original[k]
        assert relay[k] < 1.6 * original[k]
    # "the saved energy of the UE will exceed considerably the wasted
    # energy of the relay" as k grows
    wasted_relay = [r - o for r, o in zip(relay, original)]
    assert series["saved_ue"][-1] > 2.0 * wasted_relay[-1]
    # system savings grow with connection time
    assert series["saved_system"][-1] > series["saved_system"][0]
