"""Table IV — relay receive energy vs. number of received beats.

Paper values (µAh): 123.22, 252.40, 386.106, 517.97, 655.82, 791.178,
911.196 for 1-7 beats — "an approximate linear relationship between the
energy consumption of receiving data and the number of connected UEs".

We run the star scenario with 1-7 UEs (each forwarding one beat in the
period) and read the relay's cumulative D2D receive charge.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.analysis import linear_fit
from repro.energy.profiles import TABLE_IV_RECEIVE_UAH
from repro.experiments import table4 as run_receive_sweep
from repro.reporting import format_table


@pytest.mark.benchmark(group="table4")
def test_table4_receive_energy(benchmark):
    measured = run_once(benchmark, run_receive_sweep)

    print_header("Table IV — relay receive charge (µAh) vs. received beats")
    rows = [
        [n + 1, TABLE_IV_RECEIVE_UAH[n], measured[n]]
        for n in range(7)
    ]
    print(format_table(["Beats", "Paper", "Measured"], rows))

    slope, intercept, r_squared = linear_fit(
        list(range(1, 8)), measured
    )
    print(f"linear fit: slope={slope:.2f} µAh/beat, r²={r_squared:.5f}")

    # within 10 % of the published cumulative numbers
    for n in range(7):
        assert measured[n] == pytest.approx(TABLE_IV_RECEIVE_UAH[n], rel=0.10), n
    # the paper's claim: approximately linear
    assert r_squared > 0.999
    assert slope == pytest.approx(130.0, rel=0.10)
