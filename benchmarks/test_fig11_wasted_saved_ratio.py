"""Fig. 11 — ratio of the relay's wasted energy to the UEs' saved energy.

Paper finding: "With more UEs connected with a relay and longer D2D
connection time, ratio of the wasted energy caused by the relay and the
energy saved by the UE drops from around 97% to around 5%."
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.experiments import fig11
from repro.reporting import format_series

UE_COUNTS = (1, 3, 5, 7)
TRANSMISSIONS = list(range(1, 8))


def run_fig11_sweep():
    # UE phases are aligned inside fig11(), as in the paper's rig
    return fig11(ue_counts=UE_COUNTS, max_k=len(TRANSMISSIONS))


@pytest.mark.benchmark(group="fig11")
def test_fig11_wasted_to_saved_ratio(benchmark):
    curves = run_once(benchmark, run_fig11_sweep)

    print_header("Fig. 11 — wasted/saved energy ratio (%)")
    print(format_series("k", TRANSMISSIONS, curves))
    print("paper: drops from ~97% to ~5%")

    # the worst case (1 UE, 1 transmission) is near break-even: ~100 %
    assert curves["1 UE"][0] == pytest.approx(97.0, abs=15.0)
    # the best case (7 UEs, long connection) drops to a small fraction
    assert curves["7 UE"][-1] < 20.0
    # ratio improves with more UEs at every connection length
    for k in range(len(TRANSMISSIONS)):
        column = [curves[f"{n} UE"][k] for n in UE_COUNTS]
        assert all(b < a for a, b in zip(column, column[1:])), f"k={k + 1}"
    # and improves with connection time for every UE count
    for name, curve in curves.items():
        assert curve[-1] < curve[0], name
