"""Figs. 6 & 7 — instant-current traces for D2D vs. cellular transfer.

The paper's Monsoon captures show the qualitative difference: the D2D
transfer is a short spike that "descends rapidly", the cellular transfer
"spurts and lasts for a longer period" (the RRC tail). We synthesize both
traces with the power-monitor emulation driven by a real single-transfer
simulation, and check the shapes.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.cellular.basestation import BaseStation
from repro.cellular.modem import CellularModem
from repro.cellular.signaling import SignalingLedger
from repro.d2d.base import D2DEndpoint, D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.energy.model import EnergyModel
from repro.energy.power_monitor import PowerMonitor
from repro.mobility.models import StaticMobility
from repro.reporting import sparkline
from repro.sim.engine import Simulator


def trace_d2d_transfer():
    """One 54 B D2D transfer, UE side, sampled at 0.1 s (Fig. 6)."""
    sim = Simulator(seed=0)
    medium = D2DMedium(sim, WIFI_DIRECT)
    monitor = PowerMonitor()
    ue = D2DEndpoint("ue", StaticMobility((0.0, 0.0)),
                     energy=EnergyModel("ue", on_charge=monitor.on_charge))
    relay = D2DEndpoint("relay", StaticMobility((1.0, 0.0)))
    relay.advertising = True
    medium.register(ue)
    medium.register(relay)
    holder = []
    medium.connect("ue", "relay", holder.append)
    sim.run_until(5.0)
    monitor.reset()  # isolate the transfer itself, as the paper's plot does
    start = sim.now
    holder[0].send("ue", 54, "beat")
    sim.run_until(start + 10.0)
    return monitor


def trace_cellular_transfer():
    """One 54 B cellular transfer, sampled at 0.1 s (Fig. 7)."""
    sim = Simulator(seed=0)
    ledger = SignalingLedger()
    monitor = PowerMonitor()
    energy = EnergyModel("dev", on_charge=monitor.on_charge)
    modem = CellularModem(sim, "dev", energy=energy, ledger=ledger,
                          basestation=BaseStation(sim, ledger=ledger))
    modem.send(54)
    sim.run_until(60.0)
    return monitor


@pytest.mark.benchmark(group="fig6-7")
def test_fig6_d2d_current_trace(benchmark):
    monitor = run_once(benchmark, trace_d2d_transfer)
    currents = monitor.currents_ma(until_s=8.0)

    print_header("Fig. 6 — instant current, D2D transfer (mA, 0.1 s samples)")
    print(sparkline(currents, width=60))
    print(f"peak={monitor.peak_ma():.0f} mA  "
          f"elevated={monitor.elevated_duration_s():.1f} s  "
          f"charge={monitor.integral_uah():.1f} µAh")

    # shape: a short spike that decays fast
    assert monitor.elevated_duration_s(threshold_ma=50.0) <= 1.5
    assert 300.0 <= monitor.peak_ma() <= 1500.0
    peak_index = currents.index(max(currents))
    # within half a second of the peak, current is back near idle
    after = currents[peak_index + 8]
    assert after - monitor.idle_current_ma < 50.0


@pytest.mark.benchmark(group="fig6-7")
def test_fig7_cellular_current_trace(benchmark):
    monitor = run_once(benchmark, trace_cellular_transfer)
    currents = monitor.currents_ma(until_s=12.0)

    print_header("Fig. 7 — instant current, cellular transfer (mA, 0.1 s samples)")
    print(sparkline(currents, width=60))
    print(f"peak={monitor.peak_ma():.0f} mA  "
          f"elevated={monitor.elevated_duration_s():.1f} s  "
          f"charge={monitor.integral_uah():.1f} µAh")

    # shape: spurt followed by a multi-second elevated tail
    assert monitor.elevated_duration_s(threshold_ma=50.0) >= 5.0
    assert 300.0 <= monitor.peak_ma() <= 1700.0
    # total charge matches the calibrated cellular heartbeat cost
    from repro.energy.profiles import DEFAULT_PROFILE

    assert monitor.integral_uah() == pytest.approx(
        DEFAULT_PROFILE.cellular_heartbeat_uah(54), rel=1e-6
    )


@pytest.mark.benchmark(group="fig6-7")
def test_fig6_vs_fig7_contrast(benchmark):
    def both():
        return trace_d2d_transfer(), trace_cellular_transfer()

    d2d, cellular = run_once(benchmark, both)
    # the paper's takeaway: D2D transfer consumes far less than cellular
    assert cellular.integral_uah() > 5.0 * d2d.integral_uah()
    assert cellular.elevated_duration_s() > 4.0 * d2d.elevated_duration_s()
