"""Battery-lifetime projection — the paper's opening motivation.

"A smartphone spends at least 6% of its battery capacity in sending
heartbeat messages even with only one IM app running" (Sec. I). This
bench measures a day of heartbeat energy per role, converts it to battery
fractions on the paper's Galaxy S4, and projects how much heartbeat-
attributable battery life the framework buys each participant.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.energy.profiles import GALAXY_S4_BATTERY_MAH
from repro.reporting import format_table, percent
from repro.scenarios import run_relay_scenario
from repro.workload.apps import WECHAT

PERIODS = 32  # 32 × 270 s = 2.4 h simulated, scaled to a day
SCALE_TO_DAY = 86_400.0 / (PERIODS * WECHAT.heartbeat_period_s)


def run_lifetime_projection():
    d2d = run_relay_scenario(n_ues=3, periods=PERIODS, app=WECHAT)
    base = run_relay_scenario(n_ues=3, periods=PERIODS, app=WECHAT,
                              mode="original")
    capacity_uah = GALAXY_S4_BATTERY_MAH * 1000.0

    def daily_fraction(result, device_id):
        return result.per_device_energy_uah(device_id) * SCALE_TO_DAY / (
            capacity_uah
        )

    rows = {}
    for device_id in ("ue-0", "relay-0"):
        rows[device_id] = (
            daily_fraction(base, device_id),
            daily_fraction(d2d, device_id),
        )
    return rows


@pytest.mark.benchmark(group="battery")
def test_battery_lifetime_projection(benchmark):
    rows = run_once(benchmark, run_lifetime_projection)

    print_header(
        "Heartbeat battery cost per day (WeChat, Galaxy S4 2600 mAh)"
    )
    print(format_table(
        ["Device", "Original /day", "With framework /day"],
        [
            [device, percent(before), percent(after)]
            for device, (before, after) in rows.items()
        ],
    ))

    ue_before, ue_after = rows["ue-0"]
    relay_before, relay_after = rows["relay-0"]
    # the paper's claim: ≥6 %/day on the original system
    assert ue_before >= 0.06
    # a relayed UE's daily heartbeat budget collapses to ~1 %
    assert ue_after < 0.02
    assert ue_after < ue_before / 4
    # the relay pays more than it used to, but stays within ~2× its old
    # budget — the "slightly higher than original" of Fig. 8
    assert relay_before <= relay_after <= 2.0 * relay_before
