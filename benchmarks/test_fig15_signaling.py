"""Fig. 15 — layer-3 message consumption vs. transmission times.

Paper findings:

- the UE "brings in no extra cellular signaling traffic" (zero L3);
- the relay's signaling is "nearly the same as the original system"
  (a single device's), slightly higher with more connected UEs (bigger
  aggregates trigger bearer reconfigurations);
- the whole system sees ">50% cellular signaling traffic saving" with one
  UE, and the saving improves with more UEs.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.analysis import signaling_reduction
from repro.reporting import format_series, percent
from repro.scenarios import run_relay_scenario

TRANSMISSIONS = list(range(1, 11))


def run_fig15_sweep():
    from repro.experiments import fig15

    return fig15(max_k=len(TRANSMISSIONS))


@pytest.mark.benchmark(group="fig15")
def test_fig15_layer3_messages(benchmark):
    series, reductions = run_once(benchmark, run_fig15_sweep)

    print_header("Fig. 15 — layer-3 messages vs. transmission times")
    print(format_series("k", TRANSMISSIONS, series, float_format="{:.0f}"))
    print(f"system signaling reduction @10, 1 UE: {percent(reductions[1][-1])}"
          f"  (paper: >50%)")
    print(f"system signaling reduction @10, 2 UEs: {percent(reductions[2][-1])}")

    original = series["original"]
    one_ue = series["relay w/1 UE"]
    two_ue = series["relay w/2 UEs"]
    # the original slope is ~8 L3 messages per heartbeat cycle
    assert original == [8 * k for k in TRANSMISSIONS]
    # the UE adds zero cellular signaling when relayed
    assert series["ue (d2d)"] == [0] * len(TRANSMISSIONS)
    # the relay's signaling ≈ one original device's
    for k in range(len(TRANSMISSIONS)):
        assert one_ue[k] == original[k]
        # more UEs → slightly more signaling (reconfigs), never less
        assert two_ue[k] >= one_ue[k]
    assert sum(two_ue) > sum(one_ue)
    # the headline: >= 50 % system-level signaling reduction with one UE
    assert all(r >= 0.499 for r in reductions[1])
    # and it improves with a second UE
    assert all(r2 > r1 for r1, r2 in zip(reductions[1], reductions[2]))
