"""Ablation A9 — Wi-Fi Direct group joins vs. pairwise formations.

In real Wi-Fi Direct, a relay that already owns a group admits further
UEs by *join* (no second GO negotiation) — faster and cheaper than the
pairwise formation the Table III/IV calibration measures. The
reproduction keeps joins off by default to preserve the calibration; this
ablation turns them on and quantifies what the default leaves on the
table for a multi-UE relay.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.reporting import format_table
from repro.scenarios import run_relay_scenario

N_UES = 5
PERIODS = 3


def run_pairwise_vs_joins():
    results = {}
    for label, group_aware in (("pairwise (calibrated)", False),
                               ("group joins", True)):
        result = run_relay_scenario(
            n_ues=N_UES, distance_m=1.0, periods=PERIODS,
            group_aware=group_aware,
        )
        breakdown = result.metrics.devices["relay-0"].energy_breakdown
        results[label] = {
            "relay_total": result.per_device_energy_uah("relay-0"),
            "relay_setup": breakdown["d2d_discovery"]
            + breakdown["d2d_connection"],
            "ue_total": result.ue_energy_uah(),
            "joins": result.context.medium.group_joins,
            "forwarded": result.framework.total_beats_forwarded(),
            "on_time": result.on_time_fraction(),
        }
    return results


@pytest.mark.benchmark(group="ablation-joins")
def test_ablation_group_joins(benchmark):
    results = run_once(benchmark, run_pairwise_vs_joins)

    print_header(
        f"Ablation A9 — group joins, 1 relay + {N_UES} UEs, {PERIODS} periods"
    )
    rows = [
        [label, r["joins"], r["relay_setup"], r["relay_total"], r["ue_total"]]
        for label, r in results.items()
    ]
    print(format_table(
        ["Mode", "Joins", "Relay setup (µAh)", "Relay total (µAh)",
         "UE total (µAh)"],
        rows,
    ))

    pairwise = results["pairwise (calibrated)"]
    joins = results["group joins"]
    # joins actually happened: all UEs after the first joined the group
    assert pairwise["joins"] == 0
    assert joins["joins"] == N_UES - 1
    # the relay's setup burden shrinks (one negotiation instead of five)
    assert joins["relay_setup"] < 0.7 * pairwise["relay_setup"]
    assert joins["relay_total"] < pairwise["relay_total"]
    # behaviour is otherwise identical
    assert joins["forwarded"] == pairwise["forwarded"] == N_UES * PERIODS
    assert joins["on_time"] == pairwise["on_time"] == 1.0
