"""Table III — energy consumption in different phases (UE vs. relay).

Paper values (µAh), one relay + one UE at 1 m, 54 B beats::

                Discovery  Connection  Forwarding
    UE            132.24      63.74       73.09
    Relay         122.50      60.29      132.45

We run the pair scenario for a single transmission and read the per-phase
breakdown straight from the energy ledgers.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.experiments import TABLE3_PAPER as PAPER, table3 as run_single_session
from repro.reporting import format_table


@pytest.mark.benchmark(group="table3")
def test_table3_phase_energy(benchmark):
    measured = run_once(benchmark, run_single_session)

    print_header("Table III — per-phase charge (µAh), 1 relay + 1 UE @ 1 m")
    rows = []
    for side in ("ue", "relay"):
        for phase in ("discovery", "connection", "forwarding"):
            rows.append(
                [side.upper(), phase, PAPER[side][phase], measured[side][phase]]
            )
    print(format_table(["Side", "Phase", "Paper", "Measured"], rows))

    # discovery/connection come straight from the calibration: tight match
    for side in ("ue", "relay"):
        for phase in ("discovery", "connection"):
            assert measured[side][phase] == pytest.approx(
                PAPER[side][phase], rel=0.02
            ), (side, phase)
    # forwarding includes the D2D framing header: within 10 %
    assert measured["ue"]["forwarding"] == pytest.approx(
        PAPER["ue"]["forwarding"], rel=0.10
    )
    assert measured["relay"]["forwarding"] == pytest.approx(
        PAPER["relay"]["forwarding"], rel=0.10
    )
    # the paper's structural findings:
    # (a) discovery and connection charges are close between roles
    assert measured["ue"]["discovery"] == pytest.approx(
        measured["relay"]["discovery"], rel=0.15
    )
    # (b) the relay's receive cost dominates the UE's send cost
    assert measured["relay"]["forwarding"] > 1.4 * measured["ue"]["forwarding"]
