"""Table I — proportion of heartbeats in popular apps.

Paper values: WeChat 50%, WhatsApp 61.9%, QQ 52.6%, Facebook 48.4%.
We regenerate the shares from a week of simulated mixed traffic per app.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.experiments import TABLE1_PAPER as PAPER_SHARES, table1 as regenerate_table1
from repro.reporting import format_table, percent


@pytest.mark.benchmark(group="table1")
def test_table1_heartbeat_proportion(benchmark):
    measured = run_once(benchmark, regenerate_table1)

    print_header("Table I — proportion of heartbeats in popular apps")
    rows = [
        [app, percent(PAPER_SHARES[app]), percent(measured[app])]
        for app in PAPER_SHARES
    ]
    print(format_table(["App", "Paper", "Measured"], rows))

    for app, paper_share in PAPER_SHARES.items():
        assert measured[app] == pytest.approx(paper_share, abs=0.03), app
    # the paper's qualitative point: roughly half of all messages are beats
    assert all(0.4 <= share <= 0.7 for share in measured.values())
    # and the ordering is preserved
    assert measured["whatsapp"] > measured["qq"] > measured["facebook"]
