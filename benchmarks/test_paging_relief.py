"""Paging-failure relief (the paper's Sec. II-B operator motivation).

"The massive signaling traffic greatly deteriorates user experience on
cellular network, such as higher rate of paging failure." We run the
crowd under both systems, then drive an identical stream of incoming-call
pages through a paging channel that shares control-channel slots with the
recorded signaling, and compare failure rates.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.cellular.paging import PagingChannel, PagingConfig
from repro.reporting import format_table, percent
from repro.scenarios import run_crowd_scenario

N_DEVICES = 30
DURATION_S = 900.0
PAGE_TIMES = list(range(50, 850, 25))
CONFIG = PagingConfig(slots_per_second=1.2, window_s=10.0, retry_after_s=2.0)


def _paging_outcomes(result):
    """Replay the page schedule against the run's signaling timeline."""
    channel = PagingChannel(result.context.sim, result.context.ledger, CONFIG)
    delivered = failed = 0
    for t in PAGE_TIMES:
        if channel.occupancy(float(t)) < CONFIG.slots_per_window:
            delivered += 1
        elif (
            channel.occupancy(float(t) + CONFIG.retry_after_s)
            < CONFIG.slots_per_window
        ):
            delivered += 1
        else:
            failed += 1
    return delivered, failed


def run_paging_comparison():
    rows = {}
    for mode in ("original", "d2d"):
        result = run_crowd_scenario(
            n_devices=N_DEVICES, relay_fraction=0.2, duration_s=DURATION_S,
            seed=13, mode=mode,
        )
        delivered, failed = _paging_outcomes(result)
        rows[mode] = (result.total_l3(), delivered, failed,
                      failed / max(1, delivered + failed))
    return rows


@pytest.mark.benchmark(group="paging")
def test_paging_failure_relief(benchmark):
    rows = run_once(benchmark, run_paging_comparison)

    print_header(
        f"Paging failure — {N_DEVICES}-device crowd, {len(PAGE_TIMES)} pages"
    )
    print(format_table(
        ["System", "L3 msgs", "Pages OK", "Pages failed", "Failure rate"],
        [
            [mode, l3, ok, failed, percent(rate)]
            for mode, (l3, ok, failed, rate) in rows.items()
        ],
    ))

    original_rate = rows["original"][3]
    d2d_rate = rows["d2d"][3]
    # the storm really does fail pages in the original system
    assert original_rate > 0.1
    # and the framework relieves it substantially
    assert d2d_rate < original_rate * 0.6
