"""Multi-cell storm relief — the operator's network-wide view.

Two crowds camp in two different cells; the framework is deployed in
both. Per-cell control-channel load must drop in *every* cell (relaying
is a local fix that composes across the network), and the hottest cell's
relief is what protects paging where it matters.
"""

import time

import pytest

from benchmarks.conftest import print_header, run_once
from repro.cellular.network import CellularNetwork
from repro.metrics import SweepTelemetry
from repro.core.framework import HeartbeatRelayFramework
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import StaticMobility
from repro.reporting import format_table, percent
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s
CELL_CENTERS = ((0.0, 0.0), (400.0, 0.0), (800.0, 0.0))
PHONES_PER_CELL = (12, 8, 4)  # uneven crowds → uneven per-cell load
PERIODS = 5


def run_mode(mode, seed=3):
    sim = Simulator(seed=seed)
    network = CellularNetwork(sim, CELL_CENTERS)
    server = IMServer(sim)
    network.attach_sink_everywhere(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework([], app=STANDARD_APP)
    phase_rng = sim.rng.get("phases")
    for c, (center, count) in enumerate(zip(CELL_CENTERS, PHONES_PER_CELL)):
        for i in range(count):
            device_id = f"c{c}-dev{i}"
            position = (center[0] + float(i % 6), float(i // 6) * 2.0)
            cell = network.attach(device_id, position)
            is_relay = mode == "d2d" and i < max(1, count // 6)
            phone = Smartphone(
                sim, device_id, mobility=StaticMobility(position),
                role=(Role.RELAY if is_relay
                      else (Role.UE if mode == "d2d" else Role.STANDALONE)),
                ledger=cell.ledger, basestation=cell.basestation,
                d2d_medium=medium,
            )
            framework.add_device(
                phone,
                phase_fraction=0.0 if is_relay else phase_rng.random(),
            )
    sim.run_until(PERIODS * T - 1)
    framework.shutdown()
    sim.run_until(PERIODS * T + 30)
    return network, framework


@pytest.mark.benchmark(group="multicell")
def test_multicell_storm_relief(benchmark):
    telemetry = SweepTelemetry(total=2, mode="serial", workers=1)

    def run_both():
        """Both modes, with per-run timings booked through repro.metrics.

        The storm runs share live network objects, so unlike the grid
        benches they can't cross process boundaries — but their cost is
        still recorded the same way the sweep executor records points.
        """
        started = time.perf_counter()
        results = []
        for index, mode in enumerate(("original", "d2d")):
            mode_started = time.perf_counter()
            results.append(run_mode(mode))
            # cached=None: no cache is in play, neither counter may move
            telemetry.record(index, {"mode": mode},
                             time.perf_counter() - mode_started, cached=None)
        telemetry.wall_seconds = time.perf_counter() - started
        return tuple(results)

    (base_net, __), (d2d_net, framework) = run_once(benchmark, run_both)

    print_header("Per-mode wall-clock (via repro.metrics.SweepTelemetry)")
    print(telemetry.summary())
    assert telemetry.completed == 2
    assert all(t.seconds > 0.0 for t in telemetry.timings)

    base_load = base_net.load_by_cell()
    d2d_load = d2d_net.load_by_cell()
    rows = []
    for cell_id in sorted(base_load):
        relief = 1.0 - d2d_load[cell_id] / base_load[cell_id]
        rows.append([cell_id, base_load[cell_id], d2d_load[cell_id],
                     percent(relief)])
    print_header(
        f"Multi-cell storm relief — crowds of {PHONES_PER_CELL} phones"
    )
    print(format_table(
        ["Cell", "L3 original", "L3 d2d", "Relief"], rows,
    ))
    hot_base = base_net.hottest_cell()
    hot_d2d = d2d_net.hottest_cell()
    print(f"hottest cell: {hot_base[0]} {hot_base[1]} → "
          f"{hot_d2d[0]} {hot_d2d[1]} L3 messages")

    # every cell is relieved
    for cell_id in base_load:
        assert d2d_load[cell_id] < base_load[cell_id], cell_id
    # the busiest cell — where the storm actually bites — is relieved most
    # in absolute terms
    reliefs = {c: base_load[c] - d2d_load[c] for c in base_load}
    assert max(reliefs, key=reliefs.get) == hot_base[0]
    # load ordering still mirrors crowd sizes
    assert base_load["cell-0"] > base_load["cell-1"] > base_load["cell-2"]
