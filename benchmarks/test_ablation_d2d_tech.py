"""Ablation A3 — D2D technology choice (paper Sec. IV-A).

The paper picks Wi-Fi Direct over Bluetooth (range < 10 m, "too limited")
and LTE Direct (not deployed). We run the same pair workload over each
technology at a near distance (all work) and at 15 m (Bluetooth's link is
gone) to show the trade-off the paper describes, opting in to the
undeployed LTE Direct for the comparison.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.d2d.bluetooth import BLUETOOTH
from repro.d2d.lte_direct import LTE_DIRECT
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.reporting import format_table
from repro.scenarios import run_relay_scenario

PERIODS = 4
TECHNOLOGIES = {
    "wifi-direct": WIFI_DIRECT,
    "bluetooth": BLUETOOTH,
    "lte-direct": LTE_DIRECT,
}


def run_tech_matrix():
    results = {}
    for name, technology in TECHNOLOGIES.items():
        for distance in (2.0, 15.0):
            result = run_relay_scenario(
                n_ues=1,
                distance_m=distance,
                periods=PERIODS,
                technology=technology,
                allow_undeployed=True,
            )
            forwarded = result.framework.total_beats_forwarded()
            results[(name, distance)] = (
                result.ue_energy_uah(),
                forwarded,
                result.on_time_fraction(),
            )
    return results


@pytest.mark.benchmark(group="ablation-tech")
def test_ablation_d2d_technology(benchmark):
    results = run_once(benchmark, run_tech_matrix)

    print_header("Ablation A3 — D2D technology choice")
    rows = [
        [name, f"{distance:.0f} m", energy, forwarded, on_time]
        for (name, distance), (energy, forwarded, on_time) in sorted(results.items())
    ]
    print(format_table(
        ["Technology", "Distance", "UE energy (µAh)", "Forwarded", "On-time"],
        rows,
    ))

    # every technology delivers everything on time (fallback safety net)
    assert all(on_time == 1.0 for (__, __, on_time) in results.values())
    # at close range all three technologies forward all beats over D2D
    for name in TECHNOLOGIES:
        assert results[(name, 2.0)][1] == PERIODS, name
    # Bluetooth is the cheapest at close range (its energy advantage)...
    assert results[("bluetooth", 2.0)][0] < results[("wifi-direct", 2.0)][0]
    # ...but cannot serve the 15 m pair (range < 10 m): no beats forwarded
    assert results[("bluetooth", 15.0)][1] == 0
    # Wi-Fi Direct and LTE Direct still cover 15 m
    assert results[("wifi-direct", 15.0)][1] == PERIODS
    assert results[("lte-direct", 15.0)][1] == PERIODS


@pytest.mark.benchmark(group="ablation-tech")
def test_lte_direct_deployment_gate(benchmark):
    """The deployment gate is enforced exactly as the paper reasons."""

    def attempt():
        try:
            run_relay_scenario(n_ues=1, periods=1, technology=LTE_DIRECT)
        except ValueError as error:
            return str(error)
        return None

    message = run_once(benchmark, attempt)
    assert message is not None and "not deployed" in message
