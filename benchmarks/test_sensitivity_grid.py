"""Sensitivity grid — where does the framework win, across the whole
(distance × connection-length) plane?

The paper's figures probe one axis at a time (Fig. 9 sweeps k at 1 m,
Fig. 12 sweeps distance at fixed k). This bench sweeps both and checks
the joint structure: savings grow along k everywhere, shrink along
distance everywhere, and the break-even frontier sits where the paper's
prejudgment mechanism would refuse to pair.

The grid runs through the parallel sweep executor (``workers=2``) with
the picklable :func:`repro.scenarios.relay_savings_runner`; the
per-point wall-clock timings it records via ``repro.metrics`` are
printed and asserted below, so the parallel path stays observable.
"""

import pytest

from benchmarks.conftest import print_header, run_once
from repro.reporting import format_table
from repro.scenarios import relay_savings_runner
from repro.sweep import grid_sweep

DISTANCES = (1.0, 8.0, 15.0, 19.0)
PERIODS = (1, 3, 7)
WORKERS = 2


def run_grid():
    return grid_sweep(
        {"distance_m": list(DISTANCES), "periods": list(PERIODS)},
        relay_savings_runner,
        workers=WORKERS,
    )


@pytest.mark.benchmark(group="sensitivity")
def test_sensitivity_distance_periods(benchmark):
    sweep = run_once(benchmark, run_grid)

    telemetry = sweep.telemetry
    print_header("Sweep execution — parallel path telemetry")
    print(format_table(
        ["point", "distance_m", "periods", "seconds"],
        [[t.index, t.params["distance_m"], t.params["periods"],
          f"{t.seconds:.4f}"]
         for t in sorted(telemetry.timings, key=lambda t: t.index)],
    ))
    print(telemetry.summary())
    # the parallel path measured every point, not just ran it
    assert telemetry.mode == "process-pool" and telemetry.workers == WORKERS
    assert telemetry.completed == len(sweep) == len(DISTANCES) * len(PERIODS)
    assert all(t.seconds > 0.0 for t in telemetry.timings)
    # no point needed fault-tolerance handling on the happy path
    assert sweep.ok and telemetry.errors == 0 and telemetry.retries == 0
    assert all(t.attempts == 1 for t in telemetry.timings)
    assert telemetry.host  # dispatch identity is always stamped

    pivot = sweep.pivot("distance_m", "periods", "system_saved")
    print_header("System energy saved (fraction) over distance × periods")
    rows = [
        [f"{d:.0f} m"] + [pivot[d][k] for k in PERIODS] for d in DISTANCES
    ]
    print(format_table(["distance \\ k"] + [str(k) for k in PERIODS], rows,
                       float_format="{:+.3f}"))

    # monotone along k at every distance
    for d in DISTANCES:
        series = sweep.series("periods", "system_saved", distance_m=d)
        values = [v for __, v in series]
        assert all(b > a for a, b in zip(values, values[1:])), d
    # monotone (decreasing) along distance at every k
    for k in PERIODS:
        series = sweep.series("distance_m", "system_saved", periods=k)
        values = [v for __, v in series]
        assert all(b < a for a, b in zip(values, values[1:])), k
    # the best corner is near+long, the worst is far+short
    assert sweep.best("system_saved").params == {
        "distance_m": 1.0, "periods": 7,
    }
    assert sweep.best("system_saved", maximize=False).params == {
        "distance_m": 19.0, "periods": 1,
    }
    # at 19 m, one transmission, the framework no longer pays off for the
    # system — exactly the regime the prejudgment exists to refuse
    assert pivot[19.0][1] < 0.0
    # the UE itself still saves over most of the plane
    ue_pivot = sweep.pivot("distance_m", "periods", "ue_saved")
    assert ue_pivot[1.0][7] > 0.7
