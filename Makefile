# Development entry points. Everything is plain pytest/python underneath.

PYTHON ?= python

.PHONY: install test bench bench-tables bench-perf examples figures report smoke clean all

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable -q -s

bench-perf:
	PYTHONPATH=src $(PYTHON) -m repro bench --out benchmarks

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
		echo; \
	done

figures:
	$(PYTHON) examples/render_figures.py figures

report:
	$(PYTHON) examples/build_report.py

smoke:
	$(PYTHON) -m repro pair --periods 3

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +

all: test bench
