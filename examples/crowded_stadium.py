#!/usr/bin/env python3
"""Crowded-stadium scenario: the signaling storm the paper motivates.

Eighty phones cluster around four hotspots in a 60×60 m area (a stadium
concourse). Every phone runs an IM app; in the D2D deployment one in five
volunteers as a relay. We compare the base station's control-channel load
with and without the framework, and show what each relay earned.

Run:  python examples/crowded_stadium.py
"""

from repro import Arena, run_crowd_scenario, saved_percent
from repro.reporting import format_table


def main() -> None:
    arena = Arena(60.0, 60.0)
    common = dict(
        n_devices=80,
        arena=arena,
        duration_s=2700.0,  # 45 minutes, ~10 heartbeat periods
        hotspots=4,
        relay_fraction=0.2,
        seed=2017,
    )
    print("simulating 80-phone crowd, 45 min, original system ...")
    base = run_crowd_scenario(mode="original", **common)
    print("simulating the same crowd with the D2D framework ...")
    d2d = run_crowd_scenario(mode="d2d", **common)

    base_peak = base.context.basestation.peak_signaling_rate(window_s=60.0)
    d2d_peak = d2d.context.basestation.peak_signaling_rate(window_s=60.0)

    print()
    print(format_table(
        ["", "L3 messages", "peak L3/s", "RRC cycles", "on-time"],
        [
            ["original", base.total_l3(), base_peak,
             base.context.ledger.total_cycles, base.on_time_fraction()],
            ["d2d", d2d.total_l3(), d2d_peak,
             d2d.context.ledger.total_cycles, d2d.on_time_fraction()],
        ],
        title="Control-channel load at the base station",
    ))
    print()
    print(f"signaling reduction : "
          f"{saved_percent(base.total_l3(), d2d.total_l3()):.1f}%")
    print(f"energy reduction    : "
          f"{saved_percent(base.system_energy_uah(), d2d.system_energy_uah()):.1f}%")
    print(f"beats via D2D       : {d2d.framework.total_beats_forwarded()}"
          f"  (fallbacks {d2d.framework.total_cellular_fallbacks()})")

    print()
    accounts = d2d.framework.rewards.accounts()
    rows = [
        [a.device_id, a.beats_collected, f"{a.free_data_mb:.0f} MB",
         f"{a.credits:.2f}"]
        for a in accounts[:8]
    ]
    print(format_table(
        ["Relay", "Beats collected", "Free data earned", "Credits"],
        rows,
        title="Relay incentive accounts (top 8)",
    ))
    print(f"\noperator net value of the scheme: "
          f"{d2d.framework.rewards.operator_net_value():+.2f}")


if __name__ == "__main__":
    main()
