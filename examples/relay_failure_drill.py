#!/usr/bin/env python3
"""Failure drill: kill the relay mid-session and watch delivery survive.

The paper's feedback mechanism promises that when the relay dies (battery,
cellular loss) or the D2D link breaks, a UE "will send the heartbeat
messages via cellular network" before the beat expires. This example
builds the pair by hand from the public pieces — devices, framework,
battery — gives the relay an almost-empty battery, and traces what
happens period by period.

Run:  python examples/relay_failure_drill.py
"""

from repro import (
    Battery,
    BaseStation,
    D2DMedium,
    HeartbeatRelayFramework,
    IMServer,
    Role,
    SignalingLedger,
    Simulator,
    Smartphone,
    STANDARD_APP,
    StaticMobility,
    WIFI_DIRECT,
)

T = STANDARD_APP.heartbeat_period_s


def main() -> None:
    sim = Simulator(seed=99)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)

    # a relay with ~2.1 mAh left: enough for roughly three aggregated
    # uplinks plus the D2D work, then it dies mid-experiment
    relay_battery = Battery(capacity_mah=2.1)
    relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                       role=Role.RELAY, ledger=ledger, basestation=basestation,
                       d2d_medium=medium, battery=relay_battery)
    ue = Smartphone(sim, "ue-0", mobility=StaticMobility((1.0, 0.0)),
                    role=Role.UE, ledger=ledger, basestation=basestation,
                    d2d_medium=medium)
    framework = HeartbeatRelayFramework([])
    framework.add_device(relay, phase_fraction=0.0)
    framework.add_device(ue, phase_fraction=0.5)

    # also sever the D2D link mid-run and drop a window of acks, using the
    # public fault-injection API — delivery must shrug all of it off
    from repro.faults import FaultPlan

    plan = FaultPlan(sim)
    plan.drop_acks_between(1.2 * T, 1.4 * T, framework.ues["ue-0"])
    plan.break_links_at(1.7 * T, medium, "relay-0")

    periods = 6
    for period in range(1, periods + 1):
        sim.run_until(period * T + 10.0)
        ue_agent = framework.ues["ue-0"]
        state = "alive" if relay.alive else "DEAD"
        level = f"{relay_battery.level:5.1%}" if relay.alive else "  ---"
        print(f"period {period}: relay {state} (battery {level})  "
              f"forwarded={ue_agent.beats_forwarded}  "
              f"fallbacks={ue_agent.cellular_sends}  "
              f"ue-mode={ue_agent.state.value}")

    framework.shutdown()
    sim.run_until(periods * T + 60.0)

    on_time = [r for r in server.records if r.on_time]
    ue_beats = {r.message.seq for r in on_time
                if r.message.origin_device == "ue-0"}
    print()
    print("injected faults:")
    for line in plan.report():
        print(f"  {line}")
    print()
    print(f"UE beats delivered on time : {len(ue_beats)} / {periods}")
    print(f"relay died at battery 0    : {not relay.alive}")
    print(f"fallback transmissions     : "
          f"{framework.ues['ue-0'].feedback.fallbacks_fired}")
    print(f"duplicate deliveries       : {server.duplicate_count} "
          f"(harmless for heartbeats)")
    print()
    print("delivery never regressed: the feedback timers re-sent every "
          "unacked beat via cellular before its deadline.")


if __name__ == "__main__":
    main()
