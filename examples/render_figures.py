#!/usr/bin/env python3
"""Render the reproduced paper figures to SVG files.

Generates `figures/fig{8,9,10,11,12,13,15}.svg` from the experiment
registry — open them in any browser; hover a marker for the exact value.
The accompanying data tables come from `python examples/paper_figures.py`
or the benchmark suite.

Run:  python examples/render_figures.py [output-dir]
"""

import pathlib
import sys

from repro.experiments import run_experiment
from repro.plotting import line_chart


def main(out_dir: str = "figures") -> None:
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []

    def save(name, chart):
        path = out_dir / f"{name}.svg"
        chart.save(str(path))
        written.append(path)

    ks8 = list(range(1, 9))
    f8 = run_experiment("F8")
    save("fig8", line_chart(
        "Fig. 8 — energy vs transmission times (1 relay + 1 UE @ 1 m)",
        "transmission times", "charge (µAh)", ks8,
        {"UE": f8["ue"], "Relay": f8["relay"], "Original": f8["original"]},
    ))

    saved_system, saved_ue = run_experiment("F9")
    save("fig9", line_chart(
        "Fig. 9 — saved energy",
        "transmission times", "saved energy (%)", ks8,
        {"Whole system": saved_system, "UE": saved_ue},
    ))

    ks7 = list(range(1, 8))
    save("fig10", line_chart(
        "Fig. 10 — relay energy with multiple UEs",
        "transmission times", "charge (µAh)", ks7, run_experiment("F10"),
    ))

    save("fig11", line_chart(
        "Fig. 11 — wasted / saved energy ratio",
        "transmission times", "ratio (%)", ks7, run_experiment("F11"),
    ))

    distances = [1.0, 3.0, 5.0, 8.0, 10.0, 12.0, 15.0]
    ue, relay, original = run_experiment("F12")
    save("fig12", line_chart(
        "Fig. 12 — energy vs communication distance (5 transmissions)",
        "distance (m)", "charge (µAh)", distances,
        {"UE": ue, "Relay": relay, "Original": [original] * len(distances)},
    ))

    multipliers = [1, 2, 3, 4, 5]
    f13 = run_experiment("F13")
    save("fig13", line_chart(
        "Fig. 13 — energy vs message size (×54 B)",
        "size multiplier", "charge (µAh)", multipliers,
        {"UE": f13["ue"], "Relay": f13["relay"],
         "Original": f13["original"]},
    ))

    ks10 = list(range(1, 11))
    series, __ = run_experiment("F15")
    save("fig15", line_chart(
        "Fig. 15 — layer-3 message consumption",
        "transmission times", "layer-3 messages", ks10,
        {"Original": series["original"],
         "Relay w/1 UE": series["relay w/1 UE"],
         "Relay w/2 UEs": series["relay w/2 UEs"],
         "UE (D2D)": series["ue (d2d)"]},
    ))

    for path in written:
        print(f"wrote {path}")
    print(f"{len(written)} figures rendered — open in a browser; "
          "hover markers for values.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures")
