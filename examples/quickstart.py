#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline numbers in a few lines.

One relay and one UE stand 1 m apart; both run a WeChat-like IM app with
54 B heartbeats every 270 s. We run seven heartbeat periods with the D2D
framework and with the unmodified original system, then compare energy
and cellular signaling.

Run:  python examples/quickstart.py
"""

from repro import run_relay_scenario, saved_percent


def main() -> None:
    d2d = run_relay_scenario(n_ues=1, distance_m=1.0, periods=7, mode="d2d")
    base = run_relay_scenario(n_ues=1, distance_m=1.0, periods=7, mode="original")

    print("D2D heartbeat relaying — 1 relay + 1 UE @ 1 m, 7 periods")
    print("-" * 60)

    ue_saving = saved_percent(
        base.per_device_energy_uah("ue-0"), d2d.per_device_energy_uah("ue-0")
    )
    system_saving = saved_percent(base.system_energy_uah(), d2d.system_energy_uah())
    signaling_saving = saved_percent(base.total_l3(), d2d.total_l3())

    print(f"UE energy      : {d2d.per_device_energy_uah('ue-0'):8.1f} µAh "
          f"(original {base.per_device_energy_uah('ue-0'):8.1f}) "
          f"→ {ue_saving:5.1f}% saved   [paper: up to 55%+]")
    print(f"system energy  : {d2d.system_energy_uah():8.1f} µAh "
          f"(original {base.system_energy_uah():8.1f}) "
          f"→ {system_saving:5.1f}% saved   [paper: up to 36%]")
    print(f"L3 signaling   : {d2d.total_l3():8d} msgs "
          f"(original {base.total_l3():8d}) "
          f"→ {signaling_saving:5.1f}% saved   [paper: >50%]")
    print()
    print(f"aggregated uplinks : {d2d.framework.total_aggregated_uplinks()}")
    print(f"beats forwarded    : {d2d.framework.total_beats_forwarded()}"
          f" (cellular fallbacks: {d2d.framework.total_cellular_fallbacks()})")
    print(f"delivery on time   : {d2d.on_time_fraction():.0%} "
          f"(baseline {base.on_time_fraction():.0%})")
    print(f"relay rewards      : "
          f"{d2d.framework.rewards.account('relay-0').free_data_mb:.0f} MB free data")


if __name__ == "__main__":
    main()
