#!/usr/bin/env python3
"""Trace-driven evaluation: replaying a recorded heartbeat schedule.

The paper's authors had operator traces; this reproduction synthesizes a
production-flavoured one (jitter, missed beats, app restarts), saves it
to CSV, reloads it, and replays it through the framework — showing that
the scheduler and feedback machinery handle irregular real-world arrival
patterns, not just clean periodic ones.

Run:  python examples/trace_replay.py
"""

import random
import tempfile

from repro import (
    BaseStation,
    HeartbeatRelayFramework,
    IMServer,
    Role,
    SignalingLedger,
    Simulator,
    Smartphone,
    STANDARD_APP,
    StaticMobility,
    WIFI_DIRECT,
)
from repro.d2d.base import D2DMedium
from repro.workload.trace import (
    HeartbeatTrace,
    TraceReplayGenerator,
    synthesize_trace,
)

T = STANDARD_APP.heartbeat_period_s
HORIZON = 12 * T


def main() -> None:
    # 1. synthesize and round-trip a "production" trace
    trace = synthesize_trace(
        ["ue-0", "ue-1", "ue-2"], STANDARD_APP, HORIZON, random.Random(2017),
        jitter_fraction=0.08, miss_probability=0.05, restart_rate_per_hour=0.3,
    )
    with tempfile.NamedTemporaryFile(suffix=".csv", delete=False) as handle:
        path = handle.name
    trace.save_csv(path)
    trace = HeartbeatTrace.load_csv(path)
    print(f"trace: {len(trace)} beats from {len(trace.devices())} phones "
          f"over {trace.duration_s() / 3600:.1f} h (saved+reloaded via CSV)")
    for device in trace.devices():
        print(f"  {device}: {len(trace.for_device(device))} beats, "
              f"mean interval {trace.mean_interval_s(device):.0f}s "
              f"(nominal {T:.0f}s)")

    # 2. replay it through the full framework
    sim = Simulator(seed=7)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework([], app=STANDARD_APP)
    relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                       role=Role.RELAY, ledger=ledger, basestation=basestation,
                       d2d_medium=medium)
    framework.add_device(relay, phase_fraction=0.0)
    for i, device_id in enumerate(trace.devices()):
        ue = Smartphone(sim, device_id,
                        mobility=StaticMobility((1.0, float(i))),
                        role=Role.UE, ledger=ledger, basestation=basestation,
                        d2d_medium=medium)
        framework.add_device(ue)
        agent = framework.ues[device_id]
        agent.monitor.stop()  # the trace replaces the periodic generator
        TraceReplayGenerator(sim, device_id, trace,
                             agent.monitor.intercept).start()
    sim.run_until(HORIZON + 60.0)

    on_time = sum(1 for r in server.records if r.on_time)
    forwarded = framework.total_beats_forwarded()
    fallbacks = framework.total_cellular_fallbacks()
    print()
    print(f"replayed through the framework: {on_time} beats on time "
          f"({forwarded} via D2D, {fallbacks} cellular fallbacks)")
    print(f"relay uplinks: {framework.total_aggregated_uplinks()}  "
          f"total L3 messages: {ledger.total}")
    baseline_l3 = (len(trace) + framework.relays['relay-0']
                   .monitor.generators[STANDARD_APP.name].beats_emitted) * 8
    print(f"original system would have spent ≈ {baseline_l3} L3 messages "
          f"({1 - ledger.total / baseline_l3:.0%} saved)")


if __name__ == "__main__":
    main()
