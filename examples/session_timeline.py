#!/usr/bin/env python3
"""Visualize one relaying session as an ASCII timeline.

Renders what each device's radio was doing over three heartbeat periods —
the relay's periodic RRC setup/tx/tail bursts, the UE's one-time
discovery+connection followed by cheap D2D forwards — and contrasts it
with the original system's per-device cellular churn.

Run:  python examples/session_timeline.py
"""

from repro.scenarios import run_relay_scenario
from repro.viz import activity_summary, render_timeline

PERIODS = 3


def main() -> None:
    d2d = run_relay_scenario(n_ues=2, periods=PERIODS, keep_energy_log=True)
    base = run_relay_scenario(n_ues=2, periods=PERIODS, mode="original",
                              keep_energy_log=True)
    horizon = d2d.metrics.horizon_s

    print(f"D2D framework — 1 relay + 2 UEs, {PERIODS} periods "
          f"({horizon:.0f} s across {72} columns)")
    print(render_timeline(d2d.devices.values(), horizon, width=72))
    print()
    print("Original system — same phones, no relaying")
    print(render_timeline(base.devices.values(), horizon, width=72))
    print()

    relay = d2d.devices["relay-0"]
    print("relay energy over time (µAh per sixth of the run):")
    for start, uah in activity_summary(relay, horizon, buckets=6):
        bar = "#" * int(uah / 40)
        print(f"  t={start:6.0f}s  {uah:7.1f}  {bar}")
    print()
    print(f"energy totals: d2d={d2d.system_energy_uah():.0f} µAh "
          f"vs original={base.system_energy_uah():.0f} µAh; "
          f"signaling {d2d.total_l3()} vs {base.total_l3()} L3 messages")


if __name__ == "__main__":
    main()
