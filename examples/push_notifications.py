#!/usr/bin/env python3
"""Why heartbeats matter: push reachability, with and without them.

Heartbeats are overhead with a purpose: as long as they arrive, the IM
server can *reach* the phone with push notifications. This example walks
three scenes on one phone:

1. heartbeats flowing → pushes delivered (with real wake energy);
2. heartbeats stopped → the server's expiration timer lapses and pushes
   start failing "offline";
3. heartbeats flowing, but the cell is in a signaling storm → pushes fail
   at the paging channel instead.

Run:  python examples/push_notifications.py
"""

from repro import (
    BaseStation,
    CellularModem,
    IMServer,
    SignalingLedger,
    Simulator,
    STANDARD_APP,
)
from repro.cellular.paging import PagingChannel, PagingConfig
from repro.cellular.signaling import Direction, L3MessageType
from repro.workload.generator import HeartbeatGenerator
from repro.workload.push import PushNotificationService

T = STANDARD_APP.heartbeat_period_s


def main() -> None:
    sim = Simulator(seed=1)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    paging = PagingChannel(sim, ledger, PagingConfig(slots_per_second=4.0))
    push = PushNotificationService(sim, paging, server=server)
    modem = CellularModem(sim, "phone", ledger=ledger, basestation=basestation)
    push.register_client("phone", modem)

    generator = HeartbeatGenerator(
        sim, "phone", STANDARD_APP,
        on_beat=lambda beat: modem.send(beat.size_bytes, payload=beat),
        phase_fraction=0.0,
    ).start()

    print("scene 1 — heartbeats flowing")
    sim.run_until(2 * T)
    result = push.push("phone", "chat: hi!")
    sim.run_until(sim.now + 30)
    print(f"  push at t={result.requested_at_s:.0f}s → "
          f"{'delivered in %.1fs' % result.latency_s if result.delivered else result.failure}")

    print("scene 2 — the app stops heartbeating")
    generator.stop()
    sim.run_until(sim.now + 3.2 * T)  # expiration window is 3T
    result = push.push("phone", "chat: are you there?")
    print(f"  push at t={result.requested_at_s:.0f}s → "
          f"{'delivered' if result.delivered else 'FAILED (' + result.failure + ')'}")

    print("scene 3 — heartbeats back, but the cell storms")
    generator2 = HeartbeatGenerator(
        sim, "phone", STANDARD_APP,
        on_beat=lambda beat: modem.send(beat.size_bytes, payload=beat),
        phase_fraction=0.0,
    ).start()
    sim.run_until(sim.now + 1.5 * T)
    storm_start = sim.now - 5.0
    for i in range(900):
        ledger.record(storm_start + i * 0.009, "crowd",
                      L3MessageType.RRC_CONNECTION_REQUEST, Direction.UPLINK)
    result = push.push("phone", "chat: hello?")
    sim.run_until(sim.now + 30)
    print(f"  push at t={result.requested_at_s:.0f}s → "
          f"{'delivered' if result.delivered else 'FAILED (' + result.failure + ')'}")

    print()
    print(f"totals: delivered={push.delivered_count} "
          f"failures={push.failure_breakdown()}")
    print("the D2D framework keeps scene 1 working at half the signaling —")
    print("see benchmarks/test_push_reachability.py for the comparison.")


if __name__ == "__main__":
    main()
