#!/usr/bin/env python3
"""Operator planning: who should be appointed relay?

The paper's framework has the mobile operator "select relays among the
participating smartphone users". This example plays the operator: given
40 opted-in phones clustered around 4 hotspots and a budget of 4 relay
appointments, it compares dominating-set planning against random picks —
first on paper (coverage), then end-to-end (signaling, fallbacks, and the
paging-failure rate the paper says storms inflict).

Run:  python examples/operator_planning.py
"""

import random

from repro.cellular.paging import PagingChannel, PagingConfig
from repro.core.operator import (
    Participant,
    coverage,
    greedy_relay_selection,
    proximity_graph,
    random_relay_selection,
    selection_report,
)
from repro.mobility.space import Arena
from repro.reporting import format_table, percent
from repro.scenarios import run_crowd_scenario

ARENA = Arena(150.0, 150.0)
N_DEVICES = 40
BUDGET = 4
RANGE_M = 20.0


def plan_on_paper() -> None:
    rng = random.Random(7)
    participants = []
    hotspot_centers = [(30, 30), (120, 30), (30, 120), (120, 120)]
    for i in range(N_DEVICES):
        cx, cy = hotspot_centers[i % 4]
        participants.append(Participant(
            f"phone-{i}",
            (cx + rng.gauss(0, 6), cy + rng.gauss(0, 6)),
            battery_level=rng.uniform(0.3, 1.0),
        ))
    graph = proximity_graph(participants, RANGE_M)

    greedy = greedy_relay_selection(participants, RANGE_M, max_relays=BUDGET)
    greedy_cov, greedy_load = selection_report(greedy, participants, RANGE_M)
    rows = [["greedy (dominating set)", len(greedy),
             percent(greedy_cov), f"{greedy_load:.1f}"]]
    for seed in range(3):
        picks = random_relay_selection(participants, BUDGET, random.Random(seed))
        cov, load = selection_report(picks, participants, RANGE_M)
        rows.append([f"random (seed {seed})", len(picks), percent(cov),
                     f"{load:.1f}"])
    print(format_table(
        ["Policy", "Relays", "Coverage", "UEs/relay"],
        rows,
        title=f"Planning on paper — {N_DEVICES} phones, budget {BUDGET}, "
              f"{RANGE_M:.0f} m pairing range",
    ))
    print(f"greedy appointments: {', '.join(greedy)}")


def validate_end_to_end() -> None:
    print("\nEnd-to-end validation (20 min simulated, mean of 2 seeds):")
    config = PagingConfig(slots_per_second=0.8, window_s=10.0)
    rows = []
    for strategy in ("greedy", "random"):
        l3 = fallbacks = failures = pages = 0
        for seed in (1, 2):
            run = run_crowd_scenario(
                n_devices=N_DEVICES, relay_fraction=BUDGET / N_DEVICES,
                duration_s=1200.0, arena=ARENA, hotspots=4, capacity=12,
                seed=seed, relay_selection=strategy,
            )
            l3 += run.total_l3()
            fallbacks += run.framework.total_cellular_fallbacks()
            channel = PagingChannel(run.context.sim, run.context.ledger, config)
            for t in range(60, 1150, 30):
                pages += 1
                if channel.occupancy(float(t)) >= config.slots_per_window:
                    failures += 1
        rows.append([strategy, l3 // 2, fallbacks // 2,
                     percent(failures / pages)])
    print(format_table(
        ["Policy", "L3 msgs", "Fallbacks", "Page-block rate"], rows,
    ))


def main() -> None:
    plan_on_paper()
    validate_end_to_end()


if __name__ == "__main__":
    main()
