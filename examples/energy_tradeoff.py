#!/usr/bin/env python3
"""When does D2D forwarding stop paying off? (Fig. 12's question.)

Explores the mode-selection economics the UE runs before pairing:
per-session cost curves over distance and session length, the breakeven
distance, and a synthesized Monsoon-style current trace contrasting one
D2D transfer against one cellular transfer (Figs. 6/7).

Run:  python examples/energy_tradeoff.py
"""

from repro import DEFAULT_PROFILE, breakeven_distance_m
from repro.core.modes import cellular_session_cost_uah, d2d_session_cost_uah
from repro.energy.model import EnergyPhase
from repro.energy.power_monitor import PowerMonitor
from repro.reporting import format_table, sparkline


def cost_matrix() -> None:
    print("UE session cost (µAh) — D2D vs. direct cellular")
    rows = []
    for beats in (1, 3, 7):
        cellular = cellular_session_cost_uah(DEFAULT_PROFILE, beats)
        for distance in (1.0, 5.0, 10.0, 15.0, 25.0):
            d2d = d2d_session_cost_uah(DEFAULT_PROFILE, beats, distance)
            rows.append([
                beats, f"{distance:.0f} m", d2d, cellular,
                "D2D" if d2d < cellular else "CELLULAR",
            ])
    print(format_table(
        ["Beats", "Distance", "D2D µAh", "Cellular µAh", "Cheaper"], rows,
    ))


def breakevens() -> None:
    print("\nbreakeven distance (beyond it, direct cellular wins):")
    for beats in (1, 2, 3, 5, 7, 10):
        print(f"  {beats:2d} beats/session → {breakeven_distance_m(expected_beats=beats):5.1f} m")


def current_traces() -> None:
    p = DEFAULT_PROFILE
    d2d = PowerMonitor()
    d2d.on_charge(0.0, EnergyPhase.D2D_FORWARD,
                  p.ue_forward_cost_uah(54), p.d2d_transfer_s)
    cellular = PowerMonitor()
    cellular.on_charge(0.0, EnergyPhase.CELLULAR_SETUP, p.cellular_setup_uah,
                       p.cellular_setup_s)
    cellular.on_charge(p.cellular_setup_s, EnergyPhase.CELLULAR_TX,
                       p.cellular_send_cost_uah(54, setup_needed=False),
                       p.cellular_tx_s)
    cellular.on_charge(p.cellular_setup_s + p.cellular_tx_s,
                       EnergyPhase.CELLULAR_TAIL, p.cellular_tail_uah,
                       p.cellular_tail_s)
    print("\nsynthesized current traces (0.1 s samples, 12 s window):")
    print(f"  D2D      |{sparkline(d2d.currents_ma(until_s=12.0), width=60)}|"
          f" {d2d.integral_uah():6.1f} µAh")
    print(f"  cellular |{sparkline(cellular.currents_ma(until_s=12.0), width=60)}|"
          f" {cellular.integral_uah():6.1f} µAh")
    print("  (the cellular tail — the long elevated plateau — is what the"
          " relay's aggregation amortizes)")


def main() -> None:
    cost_matrix()
    breakevens()
    current_traces()


if __name__ == "__main__":
    main()
