#!/usr/bin/env python3
"""Beyond heartbeats: relaying ads and diagnostics (the paper's extension).

The paper's conclusion: "Our framework could be further applied in other
periodic message, such as advertisements and diagnostic messages of apps
... The messages (1) are small in size and short in duration, (2) don't
need to reply, (3) are delay-tolerant."

This example wires a custom periodic workload — an ad-refresh beacon and a
telemetry diagnostic — through the same Message Monitor API an IM app
would use, and shows the relayability validator refusing a message that
violates the constraints.

Run:  python examples/beyond_heartbeats.py
"""

from repro import run_relay_scenario
from repro.workload.messages import (
    MessageKind,
    NotRelayableError,
    PeriodicMessage,
    validate_relayable,
)


def demonstrate_constraints() -> None:
    print("relayability constraints (paper conclusion):")
    candidates = [
        ("ad beacon, 120 B / 600 s", PeriodicMessage(
            app="ads", origin_device="ue-0", size_bytes=120,
            created_at_s=0.0, period_s=600.0, expiry_s=600.0,
            kind=MessageKind.ADVERTISEMENT)),
        ("diagnostic, 300 B / 900 s", PeriodicMessage(
            app="telemetry", origin_device="ue-0", size_bytes=300,
            created_at_s=0.0, period_s=900.0, expiry_s=900.0,
            kind=MessageKind.DIAGNOSTIC)),
        ("video chunk, 64 KiB", PeriodicMessage(
            app="video", origin_device="ue-0", size_bytes=65536,
            created_at_s=0.0, period_s=10.0, expiry_s=10.0)),
        ("RPC needing a reply", PeriodicMessage(
            app="rpc", origin_device="ue-0", size_bytes=80,
            created_at_s=0.0, period_s=60.0, expiry_s=60.0,
            requires_reply=True)),
    ]
    for label, message in candidates:
        try:
            validate_relayable(message)
            print(f"  ACCEPTED  {label}")
        except NotRelayableError as error:
            print(f"  REFUSED   {label}  ({error})")


def relay_diagnostics() -> None:
    """Run the framework over a diagnostic-style workload via app override."""
    import dataclasses

    from repro.workload.apps import AppProfile

    diagnostics = AppProfile(
        name="standard",  # reuse the registered name for server expiry logic
        heartbeat_period_s=600.0,
        heartbeat_bytes=200,
        heartbeat_share=0.5,
    )
    d2d = run_relay_scenario(n_ues=2, periods=4, app=diagnostics, mode="d2d")
    base = run_relay_scenario(n_ues=2, periods=4, app=diagnostics,
                              mode="original")
    print("\ndiagnostic workload (200 B every 600 s, 2 UEs, 4 periods):")
    print(f"  signaling: {d2d.total_l3()} vs original {base.total_l3()} "
          f"({1 - d2d.total_l3() / base.total_l3():.0%} saved)")
    print(f"  energy   : {d2d.system_energy_uah():.0f} µAh vs original "
          f"{base.system_energy_uah():.0f} µAh "
          f"({1 - d2d.system_energy_uah() / base.system_energy_uah():.0%} saved)")
    print(f"  delivery : {d2d.on_time_fraction():.0%} on time")


def main() -> None:
    demonstrate_constraints()
    relay_diagnostics()


if __name__ == "__main__":
    main()
