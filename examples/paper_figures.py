#!/usr/bin/env python3
"""Regenerate every table and figure from the paper in one run.

Walks the experiment registry (DESIGN.md §4 ids) and prints each artifact
in a paper-comparable layout — the whole evaluation section of the paper,
reproduced in a few seconds of simulation.

Run:  python examples/paper_figures.py
"""

from repro.experiments import (
    REGISTRY,
    TABLE1_PAPER,
    TABLE3_PAPER,
    run_experiment,
)
from repro.energy.profiles import TABLE_IV_RECEIVE_UAH
from repro.reporting import format_series, format_table, percent


def show_table1() -> None:
    measured = run_experiment("T1")
    print(format_table(
        ["App", "Paper", "Measured"],
        [[app, percent(TABLE1_PAPER[app]), percent(measured[app])]
         for app in TABLE1_PAPER],
        title="Table I — heartbeat share of messages",
    ))


def show_table3() -> None:
    measured = run_experiment("T3")
    rows = []
    for side in ("ue", "relay"):
        for phase in ("discovery", "connection", "forwarding"):
            rows.append([side.upper(), phase, TABLE3_PAPER[side][phase],
                         measured[side][phase]])
    print(format_table(
        ["Side", "Phase", "Paper (µAh)", "Measured (µAh)"], rows,
        title="Table III — per-phase charge",
    ))


def show_table4() -> None:
    measured = run_experiment("T4")
    print(format_table(
        ["Beats", "Paper (µAh)", "Measured (µAh)"],
        [[n + 1, TABLE_IV_RECEIVE_UAH[n], measured[n]] for n in range(7)],
        title="Table IV — relay receive charge",
    ))


def show_fig(fig_id: str, x_label: str = "k") -> None:
    description, __ = REGISTRY[fig_id]
    result = run_experiment(fig_id)
    print(description)
    if isinstance(result, dict):
        n = len(next(iter(result.values())))
        print(format_series(x_label, list(range(1, n + 1)), result))
    elif isinstance(result, tuple) and len(result) == 2 and isinstance(
        result[0], list
    ):
        saved_system, saved_ue = result
        print(format_series(
            x_label, list(range(1, len(saved_system) + 1)),
            {"system %": saved_system, "ue %": saved_ue},
        ))
    else:
        print(result)


def main() -> None:
    show_table1()
    print()
    show_table3()
    print()
    show_table4()
    print()
    for fig_id in ("F8", "F9", "F10", "F11", "F13"):
        show_fig(fig_id)
        print()
    # F12 and F15 have bespoke shapes
    ue, relay, original = run_experiment("F12")
    distances = [1.0, 3.0, 5.0, 8.0, 10.0, 12.0, 15.0]
    print(REGISTRY["F12"][0])
    print(format_series("d(m)", distances, {
        "ue": ue, "relay": relay, "original": [original] * len(distances),
    }))
    print()
    series, reductions = run_experiment("F15")
    print(REGISTRY["F15"][0])
    print(format_series("k", list(range(1, 11)), series,
                        float_format="{:.0f}"))
    print(f"signaling reduction @10: 1 UE {percent(reductions[1][-1])}, "
          f"2 UEs {percent(reductions[2][-1])}")


if __name__ == "__main__":
    main()
